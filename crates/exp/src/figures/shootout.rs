//! The six-scheme shoot-out: every manager the repo implements, run
//! cycle-level under *identical* seeds and fault plans (extension study;
//! the paper's §VII resilience argument made head-to-head).
//!
//! Earlier experiments compare schemes one axis at a time (fig17/fig18
//! for throughput, `resilience` for single-tile deaths, `thermal-coupling`
//! for in-loop heat). This one puts all six — BC, BC-C, C-RR, TS, PT,
//! Static — on the same 3x3 AV SoC under the same four scenarios:
//!
//! - **healthy**: no faults, the throughput reference;
//! - **controller-death**: the CPU tile (where the centralized
//!   controllers live) fail-stops mid-run;
//! - **hierarchy-break**: the tile that is simultaneously a TokenSmart
//!   ring stop, a Price Theory cluster supervisor, and an ordinary
//!   BlitzCoin economy member fail-stops mid-run;
//! - **sustained-thermal**: no faults, but the RC thermal network runs
//!   in the loop with a junction limit tight enough to throttle.
//!
//! Every scheme sees the byte-identical `FaultPlan` and root seed per
//! scenario, so the differential claims compare the same workload draw.
//! The summary lands in `shootout.csv`; `crates/viz` renders it as the
//! `scheme_shootout.svg` response-time/resilience matrix (dead cells —
//! schemes that stop reallocating — render as the worst response).

use blitzcoin_sim::csv::CsvTable;
use blitzcoin_sim::{FaultPlan, TileFault, TileFaultKind};
use blitzcoin_soc::prelude::*;

use crate::sweep::{par_units, write_csv};
use crate::{Ctx, FigResult};

/// Mid-run fail-stop instant (NoC cycles), matching `resilience`.
const FAULT_AT_CYCLE: u64 = 24_000;
/// The same instant in microseconds (800 NoC cycles per us).
const FAULT_AT_US: f64 = 30.0;
/// The CPU tile the centralized controllers run on.
const CONTROLLER_TILE: usize = 3;
/// The tile that is a TS ring stop, the PT cluster supervisor, and a BC
/// economy member all at once (the 3x3 AV floorplan's first managed
/// tile).
const HIERARCHY_TILE: usize = 0;
/// Junction limit (°C) for the sustained-thermal scenario, matching the
/// `thermal-coupling` experiment's tight limit at a 240 mW budget.
const THERMAL_LIMIT_C: f64 = 46.5;

/// The four scenarios, in matrix column order.
const SCENARIOS: [&str; 4] = [
    "healthy",
    "controller-death",
    "hierarchy-break",
    "sustained-thermal",
];

fn kill(tile: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.tile_faults.push(TileFault {
        tile,
        at_cycle: FAULT_AT_CYCLE,
        kind: TileFaultKind::FailStop,
    });
    plan
}

fn is_faulted(scenario: &str) -> bool {
    matches!(scenario, "controller-death" | "hierarchy-break")
}

fn run(ctx: &Ctx, manager: ManagerKind, scenario: &str, frames: usize) -> SimReport {
    let soc = floorplan::soc_3x3();
    let wl = workload::av_parallel(&soc, frames);
    let sim = match scenario {
        "healthy" => Simulation::new(soc, wl, ctx.sim_config(manager, 120.0)),
        "controller-death" => Simulation::new(soc, wl, ctx.sim_config(manager, 120.0))
            .with_fault_plan(kill(CONTROLLER_TILE)),
        "hierarchy-break" => Simulation::new(soc, wl, ctx.sim_config(manager, 120.0))
            .with_fault_plan(kill(HIERARCHY_TILE)),
        "sustained-thermal" => {
            let cfg = SimConfig {
                thermal: Some(ThermalCoupling {
                    throttle_limit_c: ctx.thermal_limit_c.unwrap_or(THERMAL_LIMIT_C),
                    ..ThermalCoupling::default()
                }),
                ..ctx.sim_config(manager, 240.0)
            };
            Simulation::new(soc, wl, cfg)
        }
        other => unreachable!("unknown scenario {other}"),
    };
    ctx.run_sim(&sim, ctx.seed)
}

/// Responses to activity changes after the fault instant: the direct
/// measure of whether the manager is still reallocating.
fn post_fault_responses(r: &SimReport) -> usize {
    r.responses.iter().filter(|s| s.at_us > FAULT_AT_US).count()
}

/// "Still managing power" per scenario: a faulted run must keep
/// answering activity changes after the fault; an unfaulted run must
/// finish its workload.
fn survived(r: &SimReport, scenario: &str) -> bool {
    if is_faulted(scenario) {
        post_fault_responses(r) > 0
    } else {
        r.finished
    }
}

/// The matrix cell: mean response over the scenario-relevant window
/// (post-fault responses for faulted scenarios, all responses
/// otherwise). `None` — the scheme never answers in that window — is the
/// "dead cell" the renderer paints as the worst response.
fn matrix_us(r: &SimReport, scenario: &str) -> Option<f64> {
    let cutoff = if is_faulted(scenario) {
        FAULT_AT_US
    } else {
        f64::NEG_INFINITY
    };
    let lags: Vec<f64> = r
        .responses
        .iter()
        .filter(|s| s.at_us > cutoff)
        .map(|s| s.response_us)
        .collect();
    if lags.is_empty() {
        None
    } else {
        Some(lags.iter().sum::<f64>() / lags.len() as f64)
    }
}

/// The `shootout` experiment: all six schemes x four scenarios on
/// identical seeds and fault plans. `--manager` narrows the matrix to
/// one scheme (the cross-scheme claims need the full matrix and are
/// skipped in that case).
pub fn shootout(ctx: &Ctx) -> FigResult {
    let mut fig = FigResult::new(
        "shootout",
        "Six-scheme shoot-out: identical seeds and fault plans",
    );
    let frames = if ctx.quick { 2 } else { 4 };
    let schemes: Vec<ManagerKind> = match ctx.manager {
        Some(m) => vec![m],
        None => ManagerKind::ALL.to_vec(),
    };

    // scheme x scenario: every run is an independent simulation, so the
    // whole matrix fans out at once.
    let grid: Vec<(ManagerKind, &str)> = schemes
        .iter()
        .flat_map(|&m| SCENARIOS.map(|s| (m, s)))
        .collect();
    let reports = par_units(ctx, &grid, |&(m, s)| run(ctx, m, s, frames));

    let mut csv = CsvTable::new([
        "manager",
        "scenario",
        "finished",
        "exec_us",
        "responses",
        "post_fault_responses",
        "survived",
        "matrix_us",
        "recovery_us",
        "coins_leaked",
        "coins_quarantined",
        "tasks_abandoned",
        "throttle_events",
        "peak_overshoot_mw",
    ]);
    for ((m, s), r) in grid.iter().zip(&reports) {
        csv.row([
            m.to_string(),
            s.to_string(),
            r.finished.to_string(),
            format!("{:.3}", r.exec_time_us()),
            r.responses.len().to_string(),
            post_fault_responses(r).to_string(),
            survived(r, s).to_string(),
            matrix_us(r, s).map_or_else(|| "dead".to_string(), |x| format!("{x:.3}")),
            r.recovery_us
                .map_or_else(|| "none".to_string(), |x| format!("{x:.3}")),
            r.coins_leaked.to_string(),
            r.coins_quarantined.to_string(),
            r.tasks_abandoned.to_string(),
            r.throttle_events.to_string(),
            format!("{:.3}", r.peak_overshoot_mw()),
        ]);
    }
    write_csv(ctx, &mut fig, "shootout.csv", &csv);

    let leaked: u64 = reports.iter().map(|r| r.coins_leaked.unsigned_abs()).sum();
    fig.claim(
        "conservation",
        "no scheme leaks a single coin in any cell of the matrix — \
         quarantine accounts for every corpse-trapped ledger",
        format!(
            "{leaked} coins leaked across {} runs ({} schemes x {} \
             scenarios)",
            reports.len(),
            schemes.len(),
            SCENARIOS.len()
        ),
        leaked == 0,
    );

    if ctx.manager.is_some() {
        return fig; // a one-scheme matrix can't support the differentials
    }
    let at = |m: ManagerKind, s: &str| {
        let i = grid
            .iter()
            .position(|&(gm, gs)| gm == m && gs == s)
            .expect("grid point");
        &reports[i]
    };

    let healthy_ok = schemes.iter().all(|&m| at(m, "healthy").finished);
    fig.claim(
        "healthy-complete",
        "all six schemes finish the healthy run under the shared seed",
        format!(
            "finished: {}",
            schemes
                .iter()
                .map(|&m| format!("{m}={}", at(m, "healthy").finished))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        healthy_ok,
    );

    // Controller death: the CPU tile is only special to the centralized
    // schemes — they stop reallocating forever, everyone decentralized
    // keeps answering.
    let decentralized = [
        ManagerKind::BlitzCoin,
        ManagerKind::TokenSmart,
        ManagerKind::PriceTheory,
    ];
    let centralized = [
        ManagerKind::BcCentralized,
        ManagerKind::CentralizedRoundRobin,
    ];
    let dec_survive = decentralized
        .iter()
        .all(|&m| survived(at(m, "controller-death"), "controller-death"));
    let cen_collapse = centralized
        .iter()
        .all(|&m| !survived(at(m, "controller-death"), "controller-death"));
    fig.claim(
        "controller-death-differential",
        "the same controller-tile kill silences only the centralized \
         schemes; BC, TS, and PT keep reallocating",
        format!(
            "post-fault responses: {}",
            schemes
                .iter()
                .map(|&m| format!("{m}={}", post_fault_responses(at(m, "controller-death"))))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        dec_survive && cen_collapse,
    );

    // Hierarchy break: the same kill aimed at the tile every
    // decentralized scheme leans on differently. TS's sequential ring
    // traps the pool; PT's hierarchy re-elects a supervisor and
    // survives; BC just reclaims a peer.
    let bc_hb = at(ManagerKind::BlitzCoin, "hierarchy-break");
    let ts_hb = at(ManagerKind::TokenSmart, "hierarchy-break");
    let pt_hb = at(ManagerKind::PriceTheory, "hierarchy-break");
    fig.claim(
        "hierarchy-break-differential",
        "one dead tile splits the decentralized schemes: TokenSmart's \
         ring traps the pool and never reallocates again, Price Theory's \
         watchdog re-elects a supervisor and keeps clearing, BlitzCoin \
         reclaims a peer and barely notices",
        format!(
            "post-fault responses: BC={}, TS={} (rings_broken={:.0}), \
             PT={} (takeovers={:.0}); PT recovered {:?} us after the kill",
            post_fault_responses(bc_hb),
            post_fault_responses(ts_hb),
            ts_hb.scheme_stat("ts_rings_broken").unwrap_or(0.0),
            post_fault_responses(pt_hb),
            pt_hb.scheme_stat("pt_takeovers").unwrap_or(0.0),
            pt_hb.recovery_us,
        ),
        survived(bc_hb, "hierarchy-break")
            && !survived(ts_hb, "hierarchy-break")
            && ts_hb.scheme_stat("ts_rings_broken") == Some(1.0)
            && survived(pt_hb, "hierarchy-break")
            && pt_hb.scheme_stat("pt_takeovers") == Some(1.0)
            && pt_hb.recovery_us.is_some(),
    );

    let thermal_ok = schemes.iter().all(|&m| {
        let r = at(m, "sustained-thermal");
        r.finished && r.throttle_events > 0
    });
    fig.claim(
        "sustained-thermal-complete",
        "the tight junction limit throttles every scheme mid-run and \
         every scheme still finishes the workload",
        format!(
            "throttle events: {}",
            schemes
                .iter()
                .map(|&m| format!("{m}={}", at(m, "sustained-thermal").throttle_events))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        thermal_ok,
    );

    fig
}
