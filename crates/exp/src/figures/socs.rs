//! Full-SoC experiments: Figs 16-20 and the AP-vs-RP study of §VI-A.
//!
//! Every per-scheme comparison here (BC vs BC-C vs C-RR, BC vs Static,
//! RP vs AP) runs its independent simulations concurrently through
//! [`par_units`], flattened across the sweep grid so the executor sees
//! one work queue. Seeding: each *sweep point* — a (budget, dataflow)
//! combo, a workload size, a budget level — gets its own
//! [`Ctx::subseed`], while the schemes compared *within* a point share
//! that seed on purpose (paired comparison on the same workload draw).

use blitzcoin_sim::csv::CsvTable;
use blitzcoin_sim::SimTime;
use blitzcoin_soc::prelude::*;

use crate::sweep::{par_units, write_csv};
use crate::{Ctx, FigResult};

/// The three managers of the paper's headline comparison, in the order
/// every grid below reports them. TokenSmart runs the same grids but
/// reports into separate `*_tokensmart.csv` files: the three-manager
/// CSVs are frozen by the golden-CSV regression lock.
const MANAGERS: [ManagerKind; 3] = [
    ManagerKind::BlitzCoin,
    ManagerKind::BcCentralized,
    ManagerKind::CentralizedRoundRobin,
];

fn frames(ctx: &Ctx) -> usize {
    if ctx.quick {
        2
    } else {
        4
    }
}

fn run_3x3(ctx: &Ctx, manager: ManagerKind, budget: f64, dep: bool, seed: u64) -> SimReport {
    let soc = floorplan::soc_3x3();
    let f = frames(ctx);
    let wl = if dep {
        workload::av_dependent(&soc, f)
    } else {
        workload::av_parallel(&soc, f)
    };
    ctx.run_sim(
        &Simulation::new(soc, wl, ctx.sim_config(manager, budget)),
        seed,
    )
}

/// Fig 16: power traces of the AV workload on the 3x3 SoC (WL-Par at
/// 120 mW, WL-Dep at 60 mW) for BC, BC-C and C-RR.
pub fn fig16(ctx: &Ctx) -> FigResult {
    let mut fig = FigResult::new("fig16", "3x3 SoC power traces (WL-Par@120mW, WL-Dep@60mW)");
    let combos = [("wlpar_120mw", false, 120.0), ("wldep_60mw", true, 60.0)];
    // the whole 2x3 (workload x manager) grid runs concurrently
    let units: Vec<(u64, bool, f64, ManagerKind)> = combos
        .iter()
        .enumerate()
        .flat_map(|(i, &(_, dep, budget))| MANAGERS.map(|m| (i as u64, dep, budget, m)))
        .collect();
    let all_reports = par_units(ctx, &units, |&(i, dep, budget, m)| {
        run_3x3(ctx, m, budget, dep, ctx.subseed(i))
    });
    for (i, (label, _, budget)) in combos.iter().enumerate() {
        let budget = *budget;
        let reports = &all_reports[3 * i..3 * i + 3];
        let mut csv = CsvTable::new(["t_us", "bc_mw", "bcc_mw", "crr_mw", "budget_mw"]);
        let horizon = reports
            .iter()
            .map(|r| r.exec_time)
            .max()
            .expect("three runs");
        let step = SimTime::from_us(2);
        let mut t = SimTime::ZERO;
        while t <= horizon {
            csv.row_values([
                t.as_us_f64(),
                reports[0].power.value_at(t),
                reports[1].power.value_at(t),
                reports[2].power.value_at(t),
                budget,
            ]);
            t += step;
        }
        write_csv(ctx, &mut fig, &format!("fig16_trace_{label}.csv"), &csv);

        let cap_ok = reports
            .iter()
            .all(|r| r.peak_overshoot_mw() <= 0.12 * budget);
        fig.claim(
            format!("cap-enforced-{label}"),
            "all three methods enforce the power cap",
            format!(
                "peak overshoot: BC {:.1}, BC-C {:.1}, C-RR {:.1} mW (transients only)",
                reports[0].peak_overshoot_mw(),
                reports[1].peak_overshoot_mw(),
                reports[2].peak_overshoot_mw()
            ),
            cap_ok,
        );
        fig.claim(
            format!("bc-shortest-runtime-{label}"),
            "BlitzCoin's faster reallocation yields the shortest runtime",
            format!(
                "exec: BC {:.0}, BC-C {:.0}, C-RR {:.0} us",
                reports[0].exec_time_us(),
                reports[1].exec_time_us(),
                reports[2].exec_time_us()
            ),
            reports[0].exec_time_us() <= reports[1].exec_time_us() * 1.01
                && reports[0].exec_time_us() < reports[2].exec_time_us(),
        );

        // the magnified inset: power reallocation around the first
        // deactivation (the paper zooms the NVDLA completion)
        if let Some(t0) = reports[0]
            .activity_changes
            .iter()
            .find(|c| !c.active)
            .map(|c| c.at_us)
        {
            let from = SimTime::from_us_f64((t0 - 5.0).max(0.0));
            let to = SimTime::from_us_f64(t0 + 20.0);
            let mut zoom = CsvTable::new(["t_us", "bc_mw", "bcc_mw", "crr_mw"]);
            let step = SimTime::from_ns(250);
            let mut t = from;
            while t <= to {
                zoom.row_values([
                    t.as_us_f64(),
                    reports[0].power.value_at(t),
                    reports[1].power.value_at(t),
                    reports[2].power.value_at(t),
                ]);
                t += step;
            }
            write_csv(ctx, &mut fig, &format!("fig16_zoom_{label}.csv"), &zoom);
            // during the reallocation window, BC banks at least as much
            // energy as the centralized schemes (it reassigns the freed
            // budget soonest)
            let bank = |r: &SimReport| r.power.integral(from, to);
            fig.claim(
                format!("fastest-reallocation-{label}"),
                "the zoomed trace shows BlitzCoin reallocating power fastest after a completion",
                format!(
                    "energy banked in the +-window: BC {:.2}, BC-C {:.2}, C-RR {:.2} uJ",
                    bank(&reports[0]) * 1e3,
                    bank(&reports[1]) * 1e3,
                    bank(&reports[2]) * 1e3
                ),
                bank(&reports[0]) >= bank(&reports[1]) * 0.98
                    && bank(&reports[0]) >= bank(&reports[2]) * 0.98,
            );
        }
    }
    fig
}

/// The Fig 17/18 grid: per-(budget, dataflow) execution and response for
/// all three managers, with the paper's aggregate ratios. The full
/// combos x managers grid executes concurrently; each combo owns a
/// sub-seed shared by its three managers.
#[allow(clippy::too_many_arguments)]
fn soc_grid(
    fig: &mut FigResult,
    ctx: &Ctx,
    soc_name: &str,
    make: impl Fn(ManagerKind, f64, bool, u64) -> SimReport + Sync,
    combos: &[(f64, bool)],
    paper_bcc_speedup: &str,
    paper_bc_response: &str,
    paper_bc_throughput: &str,
    csv_name: &str,
) {
    let units: Vec<(u64, f64, bool, ManagerKind)> = combos
        .iter()
        .enumerate()
        .flat_map(|(i, &(budget, dep))| MANAGERS.map(|m| (i as u64, budget, dep, m)))
        .collect();
    let reports = par_units(ctx, &units, |&(i, budget, dep, m)| {
        make(m, budget, dep, ctx.subseed(i))
    });

    let mut csv = CsvTable::new([
        "budget_mw",
        "dataflow",
        "manager",
        "exec_us",
        "mean_response_us",
        "nontrivial_response_us",
        "max_response_us",
        "utilization",
    ]);
    let mut speedup_bcc_vs_crr = Vec::new();
    let mut speedup_bc_vs_crr = Vec::new();
    let mut speedup_bc_vs_bcc = Vec::new();
    let mut resp_ratio_bcc = Vec::new();
    let mut resp_ratio_crr = Vec::new();
    for (i, &(budget, dep)) in combos.iter().enumerate() {
        let [bc, bcc, crr] = [&reports[3 * i], &reports[3 * i + 1], &reports[3 * i + 2]];
        for (m, r) in MANAGERS.iter().zip([bc, bcc, crr]) {
            csv.row([
                format!("{budget}"),
                if dep { "WL-Dep" } else { "WL-Par" }.to_string(),
                m.to_string(),
                format!("{:.1}", r.exec_time_us()),
                format!("{:.3}", r.mean_response_us().unwrap_or(0.0)),
                format!("{:.3}", r.mean_nontrivial_response_us(0.05).unwrap_or(0.0)),
                format!("{:.3}", r.max_response_us().unwrap_or(0.0)),
                format!("{:.3}", r.utilization()),
            ]);
        }
        speedup_bcc_vs_crr.push(crr.exec_time_us() / bcc.exec_time_us());
        speedup_bc_vs_crr.push(crr.exec_time_us() / bc.exec_time_us());
        speedup_bc_vs_bcc.push(bcc.exec_time_us() / bc.exec_time_us());
        let bc_resp = bc.mean_nontrivial_response_us(0.05).unwrap_or(f64::NAN);
        resp_ratio_bcc.push(bcc.mean_response_us().unwrap_or(f64::NAN) / bc_resp);
        resp_ratio_crr.push(crr.mean_response_us().unwrap_or(f64::NAN) / bc_resp);
    }
    write_csv(ctx, fig, csv_name, &csv);

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let bcc_speed = avg(&speedup_bcc_vs_crr);
    fig.claim(
        format!("{soc_name}.bcc-vs-crr"),
        paper_bcc_speedup.to_string(),
        format!("BC-C speedup over C-RR: {:.0}%", (bcc_speed - 1.0) * 100.0),
        bcc_speed > 1.05,
    );
    let bc_thr = avg(&speedup_bc_vs_crr);
    fig.claim(
        format!("{soc_name}.bc-throughput"),
        paper_bc_throughput.to_string(),
        format!(
            "BC throughput: +{:.0}% vs C-RR, +{:.1}% vs BC-C",
            (bc_thr - 1.0) * 100.0,
            (avg(&speedup_bc_vs_bcc) - 1.0) * 100.0
        ),
        bc_thr > 1.10,
    );
    let r_bcc = avg(&resp_ratio_bcc);
    let r_crr = avg(&resp_ratio_crr);
    fig.claim(
        format!("{soc_name}.bc-response"),
        paper_bc_response.to_string(),
        format!("BC response {r_bcc:.1}x faster than BC-C, {r_crr:.1}x than C-RR"),
        r_bcc > 2.0 && r_crr > 5.0,
    );

    // TokenSmart rides the same grid — same combos, same sub-seeds, so
    // every TS row is a paired comparison against the locked rows above —
    // but lands in its own CSV to keep the three-manager file frozen.
    let ts_units: Vec<(u64, f64, bool)> = combos
        .iter()
        .enumerate()
        .map(|(i, &(budget, dep))| (i as u64, budget, dep))
        .collect();
    let ts_reports = par_units(ctx, &ts_units, |&(i, budget, dep)| {
        make(ManagerKind::TokenSmart, budget, dep, ctx.subseed(i))
    });
    let mut ts_csv = CsvTable::new([
        "budget_mw",
        "dataflow",
        "manager",
        "exec_us",
        "mean_response_us",
        "nontrivial_response_us",
        "max_response_us",
        "utilization",
        "ts_mode_switches",
        "ts_hop_retries",
    ]);
    let mut exec_ratio_ts = Vec::new();
    let mut resp_ratio_ts = Vec::new();
    for (i, &(budget, dep)) in combos.iter().enumerate() {
        let (bc, ts) = (&reports[3 * i], &ts_reports[i]);
        ts_csv.row([
            format!("{budget}"),
            if dep { "WL-Dep" } else { "WL-Par" }.to_string(),
            ManagerKind::TokenSmart.to_string(),
            format!("{:.1}", ts.exec_time_us()),
            format!("{:.3}", ts.mean_response_us().unwrap_or(0.0)),
            format!("{:.3}", ts.mean_nontrivial_response_us(0.05).unwrap_or(0.0)),
            format!("{:.3}", ts.max_response_us().unwrap_or(0.0)),
            format!("{:.3}", ts.utilization()),
            format!("{:.0}", ts.scheme_stat("ts_mode_switches").unwrap_or(0.0)),
            format!("{:.0}", ts.scheme_stat("ts_hop_retries").unwrap_or(0.0)),
        ]);
        exec_ratio_ts.push(ts.exec_time_us() / bc.exec_time_us());
        resp_ratio_ts.push(
            ts.mean_response_us().unwrap_or(f64::NAN)
                / bc.mean_nontrivial_response_us(0.05).unwrap_or(f64::NAN),
        );
    }
    write_csv(
        ctx,
        fig,
        &csv_name.replace(".csv", "_tokensmart.csv"),
        &ts_csv,
    );
    // Price Theory rides the same grid the same way: paired sub-seeds
    // against the locked rows, its own CSV so the goldens stay frozen.
    let pt_units: Vec<(u64, f64, bool)> = combos
        .iter()
        .enumerate()
        .map(|(i, &(budget, dep))| (i as u64, budget, dep))
        .collect();
    let pt_reports = par_units(ctx, &pt_units, |&(i, budget, dep)| {
        make(ManagerKind::PriceTheory, budget, dep, ctx.subseed(i))
    });
    let mut pt_csv = CsvTable::new([
        "budget_mw",
        "dataflow",
        "manager",
        "exec_us",
        "mean_response_us",
        "nontrivial_response_us",
        "max_response_us",
        "utilization",
        "pt_iterations",
        "pt_cleared",
        "pt_sessions",
    ]);
    let mut pt_iters_total = 0.0;
    let mut pt_all_cleared = true;
    let mut resp_ratio_pt = Vec::new();
    for (i, &(budget, dep)) in combos.iter().enumerate() {
        let (bc, pt) = (&reports[3 * i], &pt_reports[i]);
        let iters = pt.scheme_stat("pt_iterations").unwrap_or(0.0);
        let sessions = pt.scheme_stat("pt_sessions").unwrap_or(0.0);
        let cleared = pt.scheme_stat("pt_cleared").unwrap_or(0.0);
        pt_csv.row([
            format!("{budget}"),
            if dep { "WL-Dep" } else { "WL-Par" }.to_string(),
            ManagerKind::PriceTheory.to_string(),
            format!("{:.1}", pt.exec_time_us()),
            format!("{:.3}", pt.mean_response_us().unwrap_or(0.0)),
            format!("{:.3}", pt.mean_nontrivial_response_us(0.05).unwrap_or(0.0)),
            format!("{:.3}", pt.max_response_us().unwrap_or(0.0)),
            format!("{:.3}", pt.utilization()),
            format!("{iters:.0}"),
            format!("{cleared:.0}"),
            format!("{sessions:.0}"),
        ]);
        pt_iters_total += iters;
        pt_all_cleared &= sessions > 0.0 && cleared >= sessions * 0.5;
        resp_ratio_pt.push(
            pt.mean_response_us().unwrap_or(f64::NAN)
                / bc.mean_nontrivial_response_us(0.05).unwrap_or(f64::NAN),
        );
    }
    write_csv(ctx, fig, &csv_name.replace(".csv", "_pt.csv"), &pt_csv);
    let pt_resp = avg(&resp_ratio_pt);
    fig.claim(
        format!("{soc_name}.pt-cycle-level"),
        "Price Theory runs cycle-level: the tâtonnement converges through \
         real quote/bid NoC round trips, so its response time carries the \
         hierarchical iteration cost the behavioural model only estimated",
        format!(
            "{pt_iters_total:.0} tâtonnement iterations over the grid, most \
             sessions cleared; PT convergence response is {pt_resp:.1}x BC's"
        ),
        pt_iters_total > 0.0 && pt_all_cleared && pt_resp > 1.0,
    );

    let ts_exec = avg(&exec_ratio_ts);
    let ts_resp = avg(&resp_ratio_ts);
    fig.claim(
        format!("{soc_name}.bc-vs-tokensmart"),
        "BlitzCoin's concurrent pairwise exchanges out-allocate TokenSmart's \
         sequential ring end to end: the greedy/fair token targets leave \
         throughput on the table even when the small-ring revolution is quick",
        format!(
            "TS runs {:.1}% longer than BC across the grid (TS settle \
             confirmation is {ts_resp:.1}x BC's convergence response on \
             these small rings; the ring's penalty is allocation quality, \
             and its revolution time grows linearly with ring size)",
            (ts_exec - 1.0) * 100.0
        ),
        ts_exec > 1.02,
    );
}

/// Fig 17: execution and response times on the 3x3 SoC.
pub fn fig17(ctx: &Ctx) -> FigResult {
    let mut fig = FigResult::new("fig17", "3x3 SoC: execution time and response time");
    soc_grid(
        &mut fig,
        ctx,
        "3x3",
        |m, b, dep, seed| run_3x3(ctx, m, b, dep, seed),
        &[(120.0, false), (60.0, false), (120.0, true), (60.0, true)],
        "BC-C provides on average 24% speedup vs C-RR",
        "BC improves response 10.1x vs BC-C and 12.1x vs C-RR",
        "BC throughput +9% vs BC-C, +34% vs C-RR",
        "fig17_soc3x3.csv",
    );
    fig
}

/// Fig 18: execution and response times on the 4x4 SoC.
pub fn fig18(ctx: &Ctx) -> FigResult {
    let mut fig = FigResult::new("fig18", "4x4 SoC: execution time and response time");
    let f = frames(ctx);
    let make = move |m: ManagerKind, b: f64, dep: bool, seed: u64| {
        let soc = floorplan::soc_4x4();
        let wl = if dep {
            workload::vision_dependent(&soc, f)
        } else {
            workload::vision_parallel(&soc, f)
        };
        ctx.run_sim(&Simulation::new(soc, wl, ctx.sim_config(m, b)), seed)
    };
    soc_grid(
        &mut fig,
        ctx,
        "4x4",
        make,
        &[(450.0, false), (900.0, false), (450.0, true)],
        "BC-C provides 20% throughput improvement over C-RR",
        "BC improves C-RR's response time by 8.3x",
        "BC throughput +25% vs C-RR",
        "fig18_soc4x4.csv",
    );
    fig
}

/// Fig 19: the silicon experiments on the 6x6 prototype's PM cluster —
/// budget utilization, coin redistribution at startup, and throughput vs
/// the static baseline for 7/5/4/3-accelerator workloads.
pub fn fig19(ctx: &Ctx) -> FigResult {
    let mut fig = FigResult::new("fig19", "PM-cluster runs (silicon substitution)");
    let soc = floorplan::soc_6x6();
    let budget = soc.total_p_max() * 0.33;
    let f = frames(ctx).max(2);

    // all four workload sizes x {BC, Static} run concurrently; each size
    // owns a sub-seed shared by the BC/Static pair
    let sizes = [7usize, 5, 4, 3];
    let units: Vec<(u64, usize, ManagerKind)> = sizes
        .iter()
        .enumerate()
        .flat_map(|(i, &n)| [ManagerKind::BlitzCoin, ManagerKind::Static].map(|m| (i as u64, n, m)))
        .collect();
    let reports = par_units(ctx, &units, |&(i, n, m)| {
        let wl = workload::pm_cluster(&soc, f, n);
        ctx.run_sim(
            &Simulation::new(soc.clone(), wl, ctx.sim_config(m, budget)),
            ctx.subseed(i),
        )
    });

    // 7-accelerator run: utilization + coin allocation before/after
    let bc = &reports[0];
    let stat = &reports[1];
    let mut csv = CsvTable::new(["tile", "coins_at_boot", "coins_after_convergence"]);
    let t_conv = bc
        .responses
        .first()
        .map(|r| SimTime::from_us_f64(r.at_us + r.response_us + 1.0))
        .unwrap_or(SimTime::from_us(50));
    for (slot, trace) in bc.coin_traces.iter().enumerate() {
        csv.row_values([
            bc.managed_tiles[slot] as f64,
            trace.value_at(SimTime::ZERO),
            trace.value_at(t_conv),
        ]);
    }
    write_csv(ctx, &mut fig, "fig19_coin_allocation.csv", &csv);

    fig.claim(
        "utilization",
        "measured input power stays within budget with P_avg/P_budget = 97%",
        format!(
            "utilization {:.0}%, peak overshoot {:.1} mW",
            bc.utilization() * 100.0,
            bc.peak_overshoot_mw()
        ),
        bc.utilization() > 0.80 && bc.utilization() <= 1.02,
    );
    let speedup7 = (stat.exec_time_us() / bc.exec_time_us() - 1.0) * 100.0;
    fig.claim(
        "throughput-vs-static",
        "BlitzCoin achieves 27% throughput improvement vs static allocation (7 accels)",
        format!(
            "+{speedup7:.0}% (BC {:.0} us vs static {:.0} us)",
            bc.exec_time_us(),
            stat.exec_time_us()
        ),
        speedup7 > 10.0,
    );

    // 5/4/3-accelerator variants
    let mut csv2 = CsvTable::new([
        "n_accels",
        "bc_exec_us",
        "static_exec_us",
        "improvement_pct",
    ]);
    let mut all_positive = true;
    for (i, &n) in sizes.iter().enumerate().skip(1) {
        let (b, s) = (&reports[2 * i], &reports[2 * i + 1]);
        let imp = (s.exec_time_us() / b.exec_time_us() - 1.0) * 100.0;
        csv2.row_values([n as f64, b.exec_time_us(), s.exec_time_us(), imp]);
        all_positive &= imp > 0.0;
    }
    write_csv(ctx, &mut fig, "fig19_static_comparison.csv", &csv2);
    fig.claim(
        "smaller-workloads",
        "similar improvements (26/26/19%) for 5/4/3-accelerator workloads",
        "improvement positive across 5/4/3-accelerator variants (see CSV)".to_string(),
        all_positive,
    );

    // coin redistribution at workload startup within ~1 coin of target
    let startup_resp = bc.responses.first().map(|r| r.response_us);
    fig.claim(
        "startup-redistribution",
        "after initialization, coins redistribute to targets with <1-coin residual",
        format!("startup convergence in {startup_resp:?} us (tolerance 1.5 coins)"),
        startup_resp.is_some(),
    );
    fig
}

/// Fig 20: coin exchange after the NVDLA task ends — the measured
/// response-time comparison (silicon: BC 0.68 µs, BC-C 1.4 µs, C-RR
/// 15.3 µs).
pub fn fig20(ctx: &Ctx) -> FigResult {
    let mut fig = FigResult::new("fig20", "Response to the NVDLA-completion transition");
    let soc = floorplan::soc_6x6();
    let budget = soc.total_p_max() * 0.33;
    let f = frames(ctx).max(2);
    let nvdla_tile = soc
        .managed_tiles()
        .into_iter()
        .find(|&t| {
            soc.tiles[t.index()].accel_class() == Some(blitzcoin_power::AcceleratorClass::Nvdla)
        })
        .expect("6x6 has an NVDLA")
        .index();

    // one transition, three managers under the same workload draw: the
    // three runs are independent and execute concurrently
    let reports = par_units(ctx, &MANAGERS, |&m| {
        let wl = workload::pm_cluster(&soc, f, 7);
        ctx.run_sim(
            &Simulation::new(soc.clone(), wl, ctx.sim_config(m, budget)),
            ctx.seed,
        )
    });
    let measured: Vec<(ManagerKind, Option<f64>, Option<f64>)> = MANAGERS
        .iter()
        .zip(&reports)
        .map(|(&m, r)| {
            // the NVDLA's stream-end transition
            let t_end = r
                .activity_changes
                .iter()
                .filter(|c| c.tile == nvdla_tile && !c.active)
                .map(|c| c.at_us)
                .next_back();
            let resp = t_end.and_then(|t| r.response_at(t));
            (m, t_end, resp)
        })
        .collect();

    // coin trace around the transition for the BC run
    let bc = &reports[0];
    let t_end = measured[0].1.unwrap_or(0.0);
    let mut csv = CsvTable::new(["t_us", "tile", "coins"]);
    let from = SimTime::from_us_f64((t_end - 2.0).max(0.0));
    let to = SimTime::from_us_f64(t_end + 6.0);
    for (slot, trace) in bc.coin_traces.iter().enumerate() {
        for p in trace.resample(from, to, SimTime::from_ns(100)) {
            csv.row_values([p.time.as_us_f64(), bc.managed_tiles[slot] as f64, p.value]);
        }
    }
    write_csv(ctx, &mut fig, "fig20_coin_trace.csv", &csv);

    let bc_resp = measured[0].2.unwrap_or(f64::NAN);
    let bcc_resp = measured[1].2.unwrap_or(f64::NAN);
    let crr_resp = measured[2].2.unwrap_or(f64::NAN);
    fig.claim(
        "bc-response",
        "BlitzCoin's response to the transition is sub-µs scale (silicon: 0.68 µs)",
        format!("BC {bc_resp:.2} us"),
        bc_resp.is_finite() && bc_resp < 3.0,
    );
    fig.claim(
        "ordering",
        "BC-C 2.1x and C-RR 22.5x slower than BlitzCoin (silicon)",
        format!(
            "BC {bc_resp:.2} us < BC-C {bcc_resp:.2} us < C-RR {crr_resp:.2} us ({:.1}x, {:.1}x)",
            bcc_resp / bc_resp,
            crr_resp / bc_resp
        ),
        bc_resp < bcc_resp && bcc_resp < crr_resp,
    );
    fig
}

/// §VI-A: Relative-Proportional vs Absolute-Proportional allocation.
pub fn ap_vs_rp(ctx: &Ctx) -> FigResult {
    let mut fig = FigResult::new("ap-vs-rp", "RP vs AP allocation (§VI-A)");
    let f = frames(ctx);
    // budgets x {RP, AP} concurrently; each budget level owns a sub-seed
    // shared by its policy pair
    let budgets = [60.0, 90.0, 120.0];
    let units: Vec<(u64, f64, AllocationPolicy)> = budgets
        .iter()
        .enumerate()
        .flat_map(|(i, &b)| {
            [
                AllocationPolicy::RelativeProportional,
                AllocationPolicy::AbsoluteProportional,
            ]
            .map(|p| (i as u64, b, p))
        })
        .collect();
    let runs = par_units(ctx, &units, |&(i, budget, policy)| {
        let soc = floorplan::soc_3x3();
        let wl = workload::av_parallel(&soc, f);
        let mut cfg = ctx.sim_config(ManagerKind::BlitzCoin, budget);
        cfg.policy = policy;
        ctx.run_sim(&Simulation::new(soc, wl, cfg), ctx.subseed(i))
    });

    let mut csv = CsvTable::new(["budget_mw", "rp_exec_us", "ap_exec_us", "rp_gain_pct"]);
    let mut gains = Vec::new();
    for (i, &budget) in budgets.iter().enumerate() {
        let (rp, ap) = (&runs[2 * i], &runs[2 * i + 1]);
        let gain = (ap.exec_time_us() / rp.exec_time_us() - 1.0) * 100.0;
        csv.row_values([budget, rp.exec_time_us(), ap.exec_time_us(), gain]);
        gains.push(gain);
    }
    write_csv(ctx, &mut fig, "ap_vs_rp.csv", &csv);
    let mean_gain = gains.iter().sum::<f64>() / gains.len() as f64;
    fig.claim(
        "rp-beats-ap",
        "RP offers 3.0-4.1% higher throughput than AP for 60-120 mW budgets",
        format!("mean RP gain {mean_gain:.1}% across budgets (per-budget in CSV)"),
        mean_gain > 0.0,
    );
    fig
}
