//! The interleaving fuzzer as an experiment: "no single point of
//! failure" must also mean "no hidden ordering dependency".
//!
//! Every SoC run pops same-timestamp events in FIFO scheduling order —
//! one legal serialization of what real concurrent hardware would do in
//! parallel. This experiment re-runs every cycle-level manager, healthy
//! and with its mid-run worker kill, under [`Ctx::orderings`] seeded
//! [`TieBreak::Permuted`] shuffles of those same-timestamp batches, and
//! asserts that nothing the reproduction *claims* depends on the one
//! ordering FIFO happens to pick:
//!
//! - the runtime oracle (coin conservation, budget ceiling, VF legality,
//!   flit conservation) stays silent under every ordering, and
//! - the order-independent report facts — the run settles, the economy
//!   leaks nothing — match the FIFO baseline exactly.
//!
//! Trajectories legally diverge (a different interleaving actuates
//! different frequencies at different instants, so execution times and
//! response latencies shift); a forbidden divergence is reported through
//! the oracle as [`Invariant::OrderIndependence`], which makes the CLI
//! exit nonzero — the CI smoke leg in `scripts/ci.sh` rides on exactly
//! that. Each divergence is bisected to the first event pop where the
//! shuffled run departed from FIFO and printed as a one-paste replay
//! line.
//!
//! The five schemes that predate Price Theory keep their rows in
//! `interleave.csv` byte-stable; PT fuzzes the identical grid into its
//! own `interleave_pt.csv`.

use blitzcoin_sim::csv::CsvTable;
use blitzcoin_sim::interleave::{self, RunFacts};
use blitzcoin_sim::oracle::{Invariant, Oracle};
use blitzcoin_sim::{FaultPlan, TieBreak, TileFault, TileFaultKind};
use blitzcoin_soc::prelude::*;

use crate::sweep::{par_units, write_csv};
use crate::{Ctx, FigResult};

/// Mid-run fail-stop instant (NoC cycles), matching the `resilience`
/// experiment so the fuzzed fault scenario is the measured one.
const FAULT_AT_CYCLE: u64 = 24_000;
/// The victim accelerator (the 3x3 AV floorplan's NVDLA).
const WORKER_TILE: usize = 4;

/// The managers whose rows the pre-existing `interleave.csv` locks.
const LOCKED_MANAGERS: [ManagerKind; 5] = [
    ManagerKind::BlitzCoin,
    ManagerKind::BcCentralized,
    ManagerKind::CentralizedRoundRobin,
    ManagerKind::TokenSmart,
    ManagerKind::Static,
];

/// Workload scenarios shared by both passes.
const SCENARIOS: [(&str, bool); 2] = [("healthy", false), ("kill-worker", true)];

fn kill_worker() -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.tile_faults.push(TileFault {
        tile: WORKER_TILE,
        at_cycle: FAULT_AT_CYCLE,
        kind: TileFaultKind::FailStop,
    });
    plan
}

fn build(manager: ManagerKind, faulted: bool, frames: usize, tie: TieBreak) -> Simulation {
    let soc = floorplan::soc_3x3();
    let wl = workload::av_parallel(&soc, frames);
    let cfg = SimConfig {
        tie_break: tie,
        ..SimConfig::new(manager, 120.0)
    };
    let sim = Simulation::new(soc, wl, cfg);
    if faulted {
        sim.with_fault_plan(kill_worker())
    } else {
        sim
    }
}

/// The order-independent facts of one run. Everything else in the report
/// (execution time, response samples, abandoned-task counts under the
/// fault) may legally differ between orderings; these must not.
fn facts_of(r: &SimReport, faulted: bool) -> RunFacts {
    let mut facts = vec![("coins-leaked".to_string(), r.coins_leaked.to_string())];
    if faulted {
        // the dead tile's tasks are abandoned, not completed — what must
        // hold is that the run settles instead of hitting the horizon
        facts.push((
            "settled".to_string(),
            (r.finished || r.tasks_abandoned > 0).to_string(),
        ));
    } else {
        facts.push(("finished".to_string(), r.finished.to_string()));
    }
    RunFacts {
        facts,
        violations: r.oracle_violations,
        first_violation: r.oracle_first.clone(),
    }
}

/// Fuzzes `managers` across every (scenario, ordering) pair, reporting
/// forbidden divergences through `oracle` and tabulating one CSV row per
/// (manager, scenario). Returns each manager's divergence count.
fn fuzz(
    ctx: &Ctx,
    fig: &mut FigResult,
    oracle: &mut Oracle,
    managers: &[ManagerKind],
    frames: usize,
    ties: &[TieBreak],
    csv_name: &str,
) -> Vec<(ManagerKind, u64)> {
    // All (manager, scenario, ordering) runs are independent
    // simulations, so the whole grid fans out at once; the FIFO baseline
    // is index 0 of each point's tie slice.
    let mut grid: Vec<(ManagerKind, usize, TieBreak)> = Vec::new();
    for &m in managers {
        for si in 0..SCENARIOS.len() {
            for &tie in ties {
                grid.push((m, si, tie));
            }
        }
    }
    let all_facts = par_units(ctx, &grid, |&(m, si, tie)| {
        facts_of(
            &ctx.run_sim(&build(m, SCENARIOS[si].1, frames, tie), ctx.seed),
            SCENARIOS[si].1,
        )
    });

    let mut csv = CsvTable::new([
        "manager",
        "scenario",
        "orderings",
        "divergences",
        "violations",
    ]);
    let per_tie = ties.len();
    let orderings = per_tie - 1;
    let mut per_manager: Vec<(ManagerKind, u64)> = Vec::new();
    for (mi, &m) in managers.iter().enumerate() {
        let mut manager_divergences = 0u64;
        for (si, &(scenario, faulted)) in SCENARIOS.iter().enumerate() {
            let base_idx = (mi * SCENARIOS.len() + si) * per_tie;
            let slice = &all_facts[base_idx..base_idx + per_tie];
            let baseline = &slice[0];
            let runs: Vec<(TieBreak, RunFacts)> = ties[1..]
                .iter()
                .zip(&slice[1..])
                .map(|(&tie, f)| (tie, f.clone()))
                .collect();
            let name = format!("interleave {m}/{scenario}");
            let outcome = interleave::compare(&name, ctx.seed, baseline, &runs, |tie, cap| {
                build(m, faulted, frames, tie).run_traced(ctx.seed, cap).1
            });
            for d in &outcome.divergences {
                eprintln!("{}", d.replay_line());
                oracle.report(
                    Invariant::OrderIndependence,
                    d.first_diff.map_or(0, |(t, _)| t / 1250),
                    format!("{}: `{}`", d.name, d.fact),
                    d.expected.clone(),
                    format!("{} under {}", d.actual, d.tie_break),
                );
            }
            manager_divergences += outcome.divergences.len() as u64;
            csv.row([
                m.to_string(),
                scenario.to_string(),
                orderings.to_string(),
                outcome.divergences.len().to_string(),
                outcome.violations.to_string(),
            ]);
        }
        per_manager.push((m, manager_divergences));
    }
    write_csv(ctx, fig, csv_name, &csv);
    per_manager
}

/// The `interleave` experiment: every cycle-level manager, healthy and
/// with a mid-run worker kill, fuzzed across `ctx.orderings()` shuffled
/// same-timestamp orderings.
pub fn interleave(ctx: &Ctx) -> FigResult {
    let mut fig = FigResult::new(
        "interleave",
        "Interleaving fuzzer: invariants across shuffled event orderings",
    );
    let frames = if ctx.quick { 2 } else { 4 };
    let orderings = ctx.orderings();
    let ties: Vec<TieBreak> = std::iter::once(TieBreak::Fifo)
        .chain(interleave::tie_breaks(ctx.seed, orderings))
        .collect();

    // Forbidden divergences surface through the oracle: the CLI (and the
    // CI interleave leg) exits nonzero whenever the per-experiment
    // violation delta is nonzero, so a divergence can never pass silently.
    let mut oracle =
        Oracle::new("blitzcoin-exp interleave", ctx.seed).with_tie_break(ctx.tie_break);

    let mut per_manager = fuzz(
        ctx,
        &mut fig,
        &mut oracle,
        &LOCKED_MANAGERS,
        frames,
        &ties,
        "interleave.csv",
    );
    per_manager.extend(fuzz(
        ctx,
        &mut fig,
        &mut oracle,
        &[ManagerKind::PriceTheory],
        frames,
        &ties,
        "interleave_pt.csv",
    ));

    for (m, divergences) in per_manager {
        fig.claim(
            format!("interleave.{m}"),
            "no result depends on the FIFO serialization of same-timestamp \
             events: invariants and order-independent facts hold under \
             every shuffled ordering",
            format!(
                "{divergences} divergences across {orderings} shuffled \
                 orderings x {} scenarios",
                SCENARIOS.len()
            ),
            divergences == 0,
        );
    }
    fig
}
