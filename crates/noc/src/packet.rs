//! NoC planes and message kinds.
//!
//! The ESP NoC the paper integrates into has six physical planes: three for
//! cache coherence, two for accelerator DMA, and plane 5 for memory-mapped
//! register (CSR) access and interrupts. The BlitzCoin integration adds a
//! new message class to plane 5 for coin-based power management
//! (Section IV-B); all power-management traffic in this reproduction
//! travels on [`Plane::MmioIrq`].

use crate::topology::TileId;

/// One of the six ESP NoC planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plane {
    /// Coherence request plane.
    Coherence1,
    /// Coherence forward plane.
    Coherence2,
    /// Coherence response plane.
    Coherence3,
    /// Accelerator DMA plane (tile to memory).
    Dma1,
    /// Accelerator DMA plane (memory to tile).
    Dma2,
    /// Memory-mapped registers + interrupts + coin management ("plane 5").
    MmioIrq,
}

impl Plane {
    /// All planes, in ESP order.
    pub const ALL: [Plane; 6] = [
        Plane::Coherence1,
        Plane::Coherence2,
        Plane::Coherence3,
        Plane::Dma1,
        Plane::Dma2,
        Plane::MmioIrq,
    ];

    /// Stable small index (0-5) for per-plane accounting arrays.
    pub fn index(self) -> usize {
        match self {
            Plane::Coherence1 => 0,
            Plane::Coherence2 => 1,
            Plane::Coherence3 => 2,
            Plane::Dma1 => 3,
            Plane::Dma2 => 4,
            Plane::MmioIrq => 5,
        }
    }
}

/// The message classes carried by the model.
///
/// Coin messages implement the 1-way exchange protocol of Fig 2
/// (Algorithm 2): a `CoinStatus` carries the sender's `(has, max)` pair to
/// the selected partner, which answers with a `CoinUpdate` carrying the
/// number of coins transferred (positive: sender of the update gives coins;
/// negative: it takes them). The 4-way variant (Algorithm 1) additionally
/// uses `CoinRequest` to solicit statuses from all four neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// 4-way exchange: solicit a status from a neighbor.
    CoinRequest,
    /// Coin exchange: report `(has, max)` to a partner.
    CoinStatus {
        /// Sender's current coin count (sign bit allows transient deficit).
        has: i32,
        /// Sender's target coin count; 0 when inactive.
        max: u32,
    },
    /// Coin exchange: transfer `delta` coins to the destination
    /// (negative `delta` takes coins back, for the 4-way redistribution).
    CoinUpdate {
        /// Coins moved from source to destination.
        delta: i32,
    },
    /// Centralized manager: read a tile's activity/CSR state.
    RegRead,
    /// Response to a [`PacketKind::RegRead`] with an opaque payload word.
    RegReadReply {
        /// Register value.
        value: u64,
    },
    /// Centralized manager: write a CSR (e.g. a tile's DVFS setting).
    RegWrite {
        /// Register value.
        value: u64,
    },
    /// Interrupt delivery (e.g. accelerator completion to the CPU tile).
    Interrupt,
    /// TokenSmart baseline: the circulating token pool visiting a tile.
    TokenPool {
        /// Tokens currently in the pool.
        tokens: u32,
    },
    /// Bulk accelerator DMA traffic (modeled only for link contention).
    DmaBurst {
        /// Burst length in flits.
        flits: u32,
    },
}

impl PacketKind {
    /// Packet length in flits (header + payload). Coin messages are short
    /// single-payload packets, matching the paper's claim that the exchange
    /// logic adds negligible NoC load; DMA bursts carry their burst length.
    pub fn flits(self) -> u32 {
        match self {
            PacketKind::CoinRequest | PacketKind::RegRead | PacketKind::Interrupt => 1,
            PacketKind::CoinStatus { .. }
            | PacketKind::CoinUpdate { .. }
            | PacketKind::RegReadReply { .. }
            | PacketKind::RegWrite { .. }
            | PacketKind::TokenPool { .. } => 2,
            PacketKind::DmaBurst { flits } => flits.max(1),
        }
    }

    /// Whether this is one of the coin-management message classes the
    /// BlitzCoin integration added to plane 5.
    pub fn is_coin_message(self) -> bool {
        matches!(
            self,
            PacketKind::CoinRequest | PacketKind::CoinStatus { .. } | PacketKind::CoinUpdate { .. }
        )
    }
}

/// A packet in flight on the NoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Source tile.
    pub src: TileId,
    /// Destination tile.
    pub dst: TileId,
    /// Physical plane the packet travels on.
    pub plane: Plane,
    /// Message class and payload.
    pub kind: PacketKind,
}

impl Packet {
    /// Creates a packet.
    pub fn new(src: TileId, dst: TileId, plane: Plane, kind: PacketKind) -> Self {
        Packet {
            src,
            dst,
            plane,
            kind,
        }
    }

    /// Convenience constructor for plane-5 coin messages.
    pub fn coin(src: TileId, dst: TileId, kind: PacketKind) -> Self {
        debug_assert!(kind.is_coin_message());
        Packet::new(src, dst, Plane::MmioIrq, kind)
    }

    /// Total length in flits.
    pub fn flits(&self) -> u32 {
        self.kind.flits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_indices_are_distinct() {
        let mut seen = [false; 6];
        for p in Plane::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn flit_lengths() {
        assert_eq!(PacketKind::CoinRequest.flits(), 1);
        assert_eq!(PacketKind::CoinStatus { has: 3, max: 8 }.flits(), 2);
        assert_eq!(PacketKind::CoinUpdate { delta: -2 }.flits(), 2);
        assert_eq!(PacketKind::DmaBurst { flits: 64 }.flits(), 64);
        assert_eq!(PacketKind::DmaBurst { flits: 0 }.flits(), 1);
    }

    #[test]
    fn coin_message_classification() {
        assert!(PacketKind::CoinRequest.is_coin_message());
        assert!(PacketKind::CoinStatus { has: 0, max: 0 }.is_coin_message());
        assert!(PacketKind::CoinUpdate { delta: 0 }.is_coin_message());
        assert!(!PacketKind::RegRead.is_coin_message());
        assert!(!PacketKind::Interrupt.is_coin_message());
    }

    #[test]
    fn coin_constructor_uses_plane5() {
        let p = Packet::coin(TileId(0), TileId(1), PacketKind::CoinUpdate { delta: 1 });
        assert_eq!(p.plane, Plane::MmioIrq);
        assert_eq!(p.flits(), 2);
    }
}
