//! Round-robin arbitration.
//!
//! The BlitzCoin integration adds a round-robin arbiter in each tile's
//! NoC-domain socket to control access to NoC plane 5, "since messages can
//! come from the BlitzCoin unit, the NoC domain CSRs, or the register
//! interface in the tile itself at any time" (Section IV-B). The same
//! primitive arbitrates the centralized controllers' service loops.

/// A work-conserving round-robin arbiter over `n` requesters.
///
/// Each call to [`RoundRobinArbiter::grant`] inspects the request vector
/// and grants the first requester at or after the rotating priority
/// pointer; the pointer then advances past the granted requester so that
/// all requesters receive equal long-run service.
///
/// # Example
///
/// ```
/// use blitzcoin_noc::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(3);
/// assert_eq!(arb.grant(&[true, true, true]), Some(0));
/// assert_eq!(arb.grant(&[true, true, true]), Some(1));
/// assert_eq!(arb.grant(&[true, true, true]), Some(2));
/// assert_eq!(arb.grant(&[true, true, true]), Some(0));
/// assert_eq!(arb.grant(&[false, false, false]), None);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    n: usize,
    next: usize,
    grants: u64,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter {
            n,
            next: 0,
            grants: 0,
        }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (the requester count is positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total grants issued so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Grants one of the asserted requests, or `None` if none asserted.
    ///
    /// # Panics
    /// Panics if `requests.len()` differs from the arbiter width.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        for offset in 0..self.n {
            let idx = (self.next + offset) % self.n;
            if requests[idx] {
                self.next = (idx + 1) % self.n;
                self.grants += 1;
                return Some(idx);
            }
        }
        None
    }

    /// Resets the rotating pointer to requester 0.
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_through_all_requesters() {
        let mut arb = RoundRobinArbiter::new(4);
        let all = [true; 4];
        let grants: Vec<_> = (0..8).map(|_| arb.grant(&all).unwrap()).collect();
        assert_eq!(grants, [0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(arb.grants(), 8);
    }

    #[test]
    fn skips_idle_requesters() {
        let mut arb = RoundRobinArbiter::new(3);
        assert_eq!(arb.grant(&[false, true, false]), Some(1));
        assert_eq!(arb.grant(&[true, false, true]), Some(2));
        assert_eq!(arb.grant(&[true, false, true]), Some(0));
    }

    #[test]
    fn none_when_idle() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
        assert_eq!(arb.grants(), 0);
    }

    #[test]
    fn fairness_under_persistent_load() {
        let mut arb = RoundRobinArbiter::new(3);
        let mut counts = [0u32; 3];
        for _ in 0..300 {
            counts[arb.grant(&[true, true, true]).unwrap()] += 1;
        }
        assert_eq!(counts, [100, 100, 100]);
    }

    #[test]
    fn no_starvation_with_competing_heavy_requester() {
        // requester 0 always requests; requester 1 requests every time too;
        // both must be served equally.
        let mut arb = RoundRobinArbiter::new(2);
        let mut counts = [0u32; 2];
        for _ in 0..100 {
            counts[arb.grant(&[true, true]).unwrap()] += 1;
        }
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn reset_restores_priority() {
        let mut arb = RoundRobinArbiter::new(3);
        arb.grant(&[true, true, true]);
        arb.reset();
        assert_eq!(arb.grant(&[true, true, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        RoundRobinArbiter::new(2).grant(&[true]);
    }
}
