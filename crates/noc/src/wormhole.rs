//! A flit-level wormhole-routed mesh, used to validate the
//! link-reservation timing model.
//!
//! [`crate::Network`] is an analytic timing model: it reserves links along
//! the XY route and returns a delivery time. That is fast enough to sit
//! inside Monte-Carlo sweeps, but its fidelity needs to be checked against
//! something closer to hardware. This module implements the classic
//! reference: input-buffered wormhole routers with XY dimension-ordered
//! routing, one flit per link per cycle, and round-robin output
//! arbitration — stepped cycle by cycle.
//!
//! The cross-validation tests (and the `noc-validation` experiment) show
//! that at zero load the two models agree hop-for-hop, and that under the
//! coin-exchange traffic levels BlitzCoin produces, the analytic model's
//! latencies are within a small factor of the wormhole router's.

use std::collections::VecDeque;

use blitzcoin_sim::oracle::{self, Invariant, Oracle};
use blitzcoin_sim::rng::splitmix64;
use blitzcoin_sim::TieBreak;

use crate::packet::Packet;
use crate::topology::{Coord, TileId, Topology};

/// Wormhole network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WormholeConfig {
    /// Flit slots per input buffer.
    pub buffer_flits: usize,
    /// Same-cycle arbitration order across routers. The default
    /// ([`TieBreak::Fifo`]) visits routers in index order; the other
    /// modes reverse or permute the visitation per cycle. Because phase-1
    /// moves are computed against buffer occupancies snapshotted at cycle
    /// start and each `(router, port)` receives at most one flit per
    /// cycle from a unique upstream, delivery results must be identical
    /// in every mode — the interleaving fuzzer asserts exactly that.
    pub tie_break: TieBreak,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        WormholeConfig {
            buffer_flits: 4,
            tie_break: TieBreak::Fifo,
        }
    }
}

/// Router port indices: N, S, E, W, local.
const PORTS: usize = 5;
const LOCAL: usize = 4;

/// A packet in flight.
#[derive(Debug, Clone)]
struct Flight {
    packet: Packet,
    injected_at: u64,
    /// Flits remaining to leave the source (serialization).
    flits_left: u32,
}

/// One flit in a buffer: which flight it belongs to and whether it is the
/// tail (frees the path reservation).
#[derive(Debug, Clone, Copy)]
struct Flit {
    flight: usize,
    is_tail: bool,
}

#[derive(Debug, Clone)]
struct Router {
    /// Input buffers per port.
    inputs: [VecDeque<Flit>; PORTS],
    /// Which input port currently owns each output port (wormhole path
    /// reservation), if any.
    out_owner: [Option<usize>; PORTS],
    /// Round-robin pointer per output port.
    rr: [usize; PORTS],
}

impl Router {
    fn new() -> Self {
        Router {
            inputs: Default::default(),
            out_owner: [None; PORTS],
            rr: [0; PORTS],
        }
    }
}

/// A delivered packet with its measured latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The packet that arrived.
    pub packet: Packet,
    /// Cycle the tail flit ejected.
    pub at_cycle: u64,
    /// Total cycles from injection to tail ejection.
    pub latency_cycles: u64,
}

/// The cycle-stepped wormhole network.
///
/// # Example
///
/// ```
/// use blitzcoin_noc::wormhole::{WormholeConfig, WormholeNetwork};
/// use blitzcoin_noc::{Packet, PacketKind, Plane, Topology};
///
/// let topo = Topology::mesh(4, 4);
/// let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
/// let pkt = Packet::new(topo.tile(0, 0), topo.tile(3, 0), Plane::MmioIrq,
///                       PacketKind::CoinRequest);
/// net.inject(pkt);
/// let delivered = net.run_until_idle(1_000);
/// assert_eq!(delivered.len(), 1);
/// // 3 hops + pipeline overheads: single-digit cycles at zero load
/// assert!(delivered[0].latency_cycles <= 8);
/// ```
#[derive(Debug, Clone)]
pub struct WormholeNetwork {
    topo: Topology,
    config: WormholeConfig,
    routers: Vec<Router>,
    flights: Vec<Flight>,
    /// Flights waiting at their source NI to start injecting.
    inject_queue: Vec<VecDeque<usize>>,
    cycle: u64,
    /// Flits of all packets whose tail has ejected (running counter; feeds
    /// [`WormholeNetwork::accepted_throughput`]).
    delivered_flit_total: u64,
    /// Packets whose tail has ejected.
    delivered_packets: u64,
    /// Every flit that left the network at a local port (head, body and
    /// tail alike) — one side of the conservation ledger.
    ejected_flits: u64,
    /// `coords[t]`: tile `t`'s mesh coordinates, precomputed so the
    /// per-flit XY routing decision in `step` is two array reads and a
    /// compare chain instead of two div/mod decompositions. Replaces the
    /// old dense `route_tbl: Vec<u8>` of `n * n` entries, which XY routing
    /// never needed (1 MB at 32x32, 256 MB at 128x128) — the port out of
    /// `r` toward `dst` is a pure function of the two coordinates.
    coords: Vec<Coord>,
    /// `next_tbl[r][port]`: the neighbor router behind each non-local
    /// output port (`usize::MAX` at a mesh edge, which XY routing never
    /// asks for).
    next_tbl: Vec<[usize; 4]>,
    /// Per-cycle scratch, owned by the network so `step` allocates
    /// nothing: free buffer slots and same-cycle claims per router/port,
    /// flits crossing links this cycle, and this cycle's deliveries.
    scratch_free: Vec<[usize; PORTS]>,
    scratch_claimed: Vec<[usize; PORTS]>,
    scratch_incoming: Vec<(usize, usize, Flit)>,
    /// Router visitation order under [`TieBreak::Permuted`] (rebuilt
    /// keyed-per-cycle; unused in the other modes).
    scratch_order: Vec<usize>,
    deliveries: Vec<Delivery>,
    /// Continuous flit-conservation auditor (no-op unless the oracle is
    /// compiled in; see `blitzcoin_sim::oracle`).
    oracle: Oracle,
}

impl WormholeNetwork {
    /// Creates an idle network over `topo`.
    pub fn new(topo: Topology, config: WormholeConfig) -> Self {
        assert!(config.buffer_flits >= 1, "buffers need at least one slot");
        let n = topo.len();
        let coords = (0..n).map(|t| topo.coord(TileId(t))).collect();
        let next_tbl = (0..n)
            .map(|r| {
                use crate::topology::Direction::*;
                let mut row = [usize::MAX; 4];
                for (port, dir) in [North, South, East, West].into_iter().enumerate() {
                    if let Some(t) = topo.neighbor(TileId(r), dir) {
                        row[port] = t.index();
                    }
                }
                row
            })
            .collect();
        WormholeNetwork {
            topo,
            config,
            routers: (0..n).map(|_| Router::new()).collect(),
            flights: Vec::new(),
            inject_queue: vec![VecDeque::new(); n],
            cycle: 0,
            delivered_flit_total: 0,
            delivered_packets: 0,
            ejected_flits: 0,
            coords,
            next_tbl,
            scratch_free: vec![[0; PORTS]; n],
            scratch_claimed: vec![[0; PORTS]; n],
            scratch_incoming: Vec::new(),
            scratch_order: Vec::new(),
            deliveries: Vec::new(),
            oracle: Oracle::new("noc::wormhole::WormholeNetwork", 0),
        }
    }

    /// The flit-conservation oracle for this network: zero recorded
    /// violations means no flit was ever lost, duplicated, or buffered
    /// beyond a port's configured depth.
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Dense-structure audit: the length of every per-tile container this
    /// network owns, by name. Each of these must grow O(tiles), never
    /// O(tiles²) — the scaling tests assert exactly that between 8x8 and
    /// 16x16, so a dense route-table-style structure cannot creep back in
    /// unnoticed.
    pub fn structure_lens(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("routers", self.routers.len()),
            ("inject_queue", self.inject_queue.len()),
            ("coords", self.coords.len()),
            ("next_tbl", self.next_tbl.len()),
            ("scratch_free", self.scratch_free.len()),
            ("scratch_claimed", self.scratch_claimed.len()),
        ]
    }

    /// Queues a packet for injection at its source tile (takes effect from
    /// the next cycle; injection serializes one flit per cycle per tile).
    pub fn inject(&mut self, packet: Packet) {
        let src = packet.src.index();
        let flits = packet.flits();
        let id = self.flights.len();
        self.flights.push(Flight {
            packet,
            injected_at: self.cycle,
            flits_left: flits,
        });
        self.inject_queue[src].push_back(id);
    }

    /// Advances one cycle; returns packets whose tail ejected this cycle.
    ///
    /// The returned slice borrows scratch storage owned by the network and
    /// is valid until the next `step` call; `step` itself performs no heap
    /// allocation once the per-cycle scratch buffers have reached their
    /// steady-state capacity.
    pub fn step(&mut self) -> &[Delivery] {
        self.cycle += 1;
        let n = self.topo.len();
        self.deliveries.clear();
        self.scratch_incoming.clear();

        // Phase 1: each router arbitrates each output port and moves at
        // most one flit from the granted input into the neighbor's input
        // buffer (or ejects at the local port). To keep the update order
        // deterministic and single-cycle-consistent, moves are computed
        // against buffer occupancies snapshotted at cycle start.
        for (router, free) in self.routers.iter().zip(self.scratch_free.iter_mut()) {
            for (p, buf) in router.inputs.iter().enumerate() {
                free[p] = self.config.buffer_flits - buf.len().min(self.config.buffer_flits);
            }
        }
        for claimed in self.scratch_claimed.iter_mut() {
            *claimed = [0; PORTS];
        }

        // Router visitation order is order-independent by construction
        // (snapshotted free space; one upstream per (router, port)), so
        // the tie-break modes fuzz it: FIFO visits in index order
        // (bit-identical to the historical loop), LIFO in reverse, and
        // Permuted in a keyed per-cycle shuffle. Output-port order
        // *within* a router stays fixed — it is load-bearing (a popped
        // input's new head may be granted by a later-visited output in
        // the same cycle) and is not a legal axis to permute.
        match self.config.tie_break {
            TieBreak::Fifo => {
                for r in 0..n {
                    self.arbitrate_router(r);
                }
            }
            TieBreak::Lifo => {
                for r in (0..n).rev() {
                    self.arbitrate_router(r);
                }
            }
            TieBreak::Permuted(key) => {
                self.scratch_order.clear();
                self.scratch_order.extend(0..n);
                let mut s = splitmix64(key ^ self.cycle);
                for i in (1..n).rev() {
                    s = splitmix64(s);
                    self.scratch_order.swap(i, (s % (i as u64 + 1)) as usize);
                }
                for i in 0..n {
                    let r = self.scratch_order[i];
                    self.arbitrate_router(r);
                }
            }
        }
        // Each (router, port) receives at most one flit per cycle (its
        // sending neighbor forwards one flit per output), so applying the
        // link crossings in discovery order lands every flit in the same
        // buffer slot the per-router grouping used to.
        for i in 0..self.scratch_incoming.len() {
            let (r, port, flit) = self.scratch_incoming[i];
            self.routers[r].inputs[port].push_back(flit);
        }

        // Phase 2: source injection, one flit per tile per cycle.
        for src in 0..n {
            let Some(&flight_id) = self.inject_queue[src].front() else {
                continue;
            };
            let local_free = self.config.buffer_flits
                - self.routers[src].inputs[LOCAL]
                    .len()
                    .min(self.config.buffer_flits);
            if local_free == 0 {
                continue;
            }
            let flight = &mut self.flights[flight_id];
            flight.flits_left -= 1;
            let is_tail = flight.flits_left == 0;
            self.routers[src].inputs[LOCAL].push_back(Flit {
                flight: flight_id,
                is_tail,
            });
            if is_tail {
                self.inject_queue[src].pop_front();
            }
        }

        if oracle::enabled() {
            self.audit_flits();
        }
        &self.deliveries
    }

    /// Phase-1 arbitration for one router: each output port grants at
    /// most one input and moves its head flit (eject at the local port,
    /// forward into the snapshot-checked neighbor buffer otherwise).
    fn arbitrate_router(&mut self, r: usize) {
        for out in 0..PORTS {
            // find the input owning this output, or arbitrate a new head
            let owner = match self.routers[r].out_owner[out] {
                Some(inp) => Some(inp),
                None => {
                    let start = self.routers[r].rr[out];
                    (0..PORTS).map(|k| (start + k) % PORTS).find(|&inp| {
                        self.routers[r].inputs[inp]
                            .front()
                            .map(|f| self.route_port(r, f.flight) == out)
                            .unwrap_or(false)
                    })
                }
            };
            let Some(inp) = owner else { continue };
            let Some(&flit) = self.routers[r].inputs[inp].front() else {
                continue;
            };
            // the owning input's head flit must actually want this output
            if self.route_port(r, flit.flight) != out {
                continue;
            }
            if out == LOCAL {
                // ejection: always accepted
                let f = self.routers[r].inputs[inp].pop_front().expect("head");
                self.ejected_flits += 1;
                if f.is_tail {
                    self.routers[r].out_owner[out] = None;
                    let flight = &self.flights[f.flight];
                    let delivery = Delivery {
                        packet: flight.packet,
                        at_cycle: self.cycle,
                        latency_cycles: self.cycle - flight.injected_at,
                    };
                    self.delivered_flit_total += u64::from(flight.packet.flits());
                    self.delivered_packets += 1;
                    self.deliveries.push(delivery);
                } else {
                    self.routers[r].out_owner[out] = Some(inp);
                }
                self.routers[r].rr[out] = (inp + 1) % PORTS;
                continue;
            }
            // forward to the neighbor if it has buffer space
            let (next, next_port) = self.next_hop(r, out);
            if self.scratch_free[next][next_port] > self.scratch_claimed[next][next_port] {
                self.scratch_claimed[next][next_port] += 1;
                let f = self.routers[r].inputs[inp].pop_front().expect("head");
                self.routers[r].out_owner[out] = if f.is_tail { None } else { Some(inp) };
                self.routers[r].rr[out] = (inp + 1) % PORTS;
                self.scratch_incoming.push((next, next_port, f));
            }
        }
    }

    /// Per-cycle flit ledger: every flit that entered the network is
    /// either buffered at some input port or has been ejected — wormhole
    /// switching may neither drop nor duplicate flits — and no input
    /// buffer exceeds its configured depth.
    fn audit_flits(&mut self) {
        let injected: u64 = self
            .flights
            .iter()
            .map(|fl| u64::from(fl.packet.flits() - fl.flits_left))
            .sum();
        let buffered: u64 = self
            .routers
            .iter()
            .map(|r| r.inputs.iter().map(VecDeque::len).sum::<usize>() as u64)
            .sum();
        self.oracle.check_eq_i128(
            Invariant::FlitConservation,
            self.cycle,
            || "network flit ledger (injected == ejected + buffered)".to_string(),
            i128::from(injected),
            i128::from(self.ejected_flits + buffered),
        );
        for (r, router) in self.routers.iter().enumerate() {
            for (p, buf) in router.inputs.iter().enumerate() {
                if buf.len() > self.config.buffer_flits {
                    self.oracle.report(
                        Invariant::FlitConservation,
                        self.cycle,
                        format!("router {r} input port {p} occupancy"),
                        format!("<= {} flits", self.config.buffer_flits),
                        format!("{} flits", buf.len()),
                    );
                }
            }
        }
    }

    /// Steps until every injected packet has been delivered or `max_cycles`
    /// elapse; returns all deliveries in order.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        let total: usize = self.flights.len();
        for _ in 0..max_cycles {
            out.extend_from_slice(self.step());
            if out.len() == total && self.is_idle() {
                break;
            }
        }
        out
    }

    /// Mean accepted throughput so far, in flits per cycle per tile —
    /// the classic saturation metric. Meaningful after some deliveries.
    ///
    /// Queried before the first cycle, or on a degenerate empty topology,
    /// the rate is defined as 0.0 — both divisors would otherwise be
    /// zero and the result NaN (0/0) or infinity.
    pub fn accepted_throughput(&self) -> f64 {
        if self.cycle == 0 || self.topo.is_empty() {
            return 0.0;
        }
        self.delivered_flit_total as f64 / self.cycle as f64 / self.topo.len() as f64
    }

    /// Packets fully delivered (tail flit ejected) so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Whether no flits remain anywhere.
    pub fn is_idle(&self) -> bool {
        self.inject_queue.iter().all(VecDeque::is_empty)
            && self
                .routers
                .iter()
                .all(|r| r.inputs.iter().all(VecDeque::is_empty))
    }

    /// The output port a flight's packet takes out of router `r` (XY
    /// dimension-ordered): 0=N, 1=S, 2=E, 3=W, 4=local. Computed in O(1)
    /// from the precomputed tile coordinates, with the same x-then-y
    /// comparison order the old dense route table was filled with, so the
    /// chosen ports — and therefore deliveries — are bit-identical.
    #[inline]
    fn route_port(&self, r: usize, flight: usize) -> usize {
        let dst = self.flights[flight].packet.dst.index();
        let here = self.coords[r];
        let there = self.coords[dst];
        if here.x < there.x {
            2
        } else if here.x > there.x {
            3
        } else if here.y < there.y {
            1
        } else if here.y > there.y {
            0
        } else {
            LOCAL
        }
    }

    /// The neighbor reached through output `port` of router `r`, and the
    /// input port it arrives on there (the opposite direction; the N/S and
    /// E/W port codes are bit-flips of each other).
    #[inline]
    fn next_hop(&self, r: usize, port: usize) -> (usize, usize) {
        (self.next_tbl[r][port], port ^ 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, NetworkConfig};
    use crate::packet::{PacketKind, Plane};

    fn pkt(topo: &Topology, a: (usize, usize), b: (usize, usize)) -> Packet {
        Packet::new(
            topo.tile(a.0, a.1),
            topo.tile(b.0, b.1),
            Plane::MmioIrq,
            PacketKind::CoinStatus { has: 1, max: 2 },
        )
    }

    #[test]
    fn zero_load_latency_tracks_hop_count() {
        let topo = Topology::mesh(6, 6);
        for (a, b, hops) in [
            ((0, 0), (5, 0), 5),
            ((0, 0), (0, 5), 5),
            ((1, 1), (4, 3), 5),
        ] {
            let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
            net.inject(pkt(&topo, a, b));
            let d = net.run_until_idle(1_000);
            assert_eq!(d.len(), 1);
            // inject + hops + eject + tail-flit serialization: small constant
            assert!(
                d[0].latency_cycles >= hops as u64 && d[0].latency_cycles <= hops as u64 + 4,
                "{a:?}->{b:?}: {} cycles for {hops} hops",
                d[0].latency_cycles
            );
        }
    }

    #[test]
    fn loopback_delivers_immediately() {
        let topo = Topology::mesh(3, 3);
        let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
        let a = topo.tile(1, 1);
        net.inject(Packet::new(a, a, Plane::MmioIrq, PacketKind::CoinRequest));
        let d = net.run_until_idle(100);
        assert_eq!(d.len(), 1);
        assert!(d[0].latency_cycles <= 3);
    }

    #[test]
    fn all_packets_eventually_deliver_under_load() {
        let topo = Topology::mesh(5, 5);
        let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
        // all-to-one hotspot: the worst congestion pattern
        for i in 1..25 {
            let src = topo.tile_by_id(i);
            net.inject(Packet::new(
                src,
                topo.tile_by_id(0),
                Plane::MmioIrq,
                PacketKind::CoinRequest,
            ));
        }
        let d = net.run_until_idle(10_000);
        assert_eq!(d.len(), 24, "every packet must be delivered");
        assert!(net.is_idle());
    }

    #[test]
    fn wormhole_keeps_multiflit_packets_contiguous() {
        let topo = Topology::mesh(4, 1);
        let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
        // two long packets fighting for the same path
        let long = Packet::new(
            topo.tile(0, 0),
            topo.tile(3, 0),
            Plane::MmioIrq,
            PacketKind::DmaBurst { flits: 6 },
        );
        net.inject(long);
        net.inject(long);
        let d = net.run_until_idle(1_000);
        assert_eq!(d.len(), 2);
        // second packet is serialized behind the first's 6 flits
        assert!(d[1].at_cycle >= d[0].at_cycle + 6);
    }

    #[test]
    fn agrees_with_analytic_model_at_zero_load() {
        // the cross-validation behind the noc-validation experiment
        let topo = Topology::mesh(8, 8);
        let analytic = Network::new(topo, NetworkConfig::default());
        for (a, b) in [((0, 0), (7, 7)), ((3, 2), (3, 6)), ((5, 5), (0, 5))] {
            let p = pkt(&topo, a, b);
            let t_analytic = analytic.latency_bound(p.src, p.dst).as_noc_cycles();
            let mut wh = WormholeNetwork::new(topo, WormholeConfig::default());
            wh.inject(p);
            let d = wh.run_until_idle(1_000);
            let t_wormhole = d[0].latency_cycles;
            let diff = t_analytic.abs_diff(t_wormhole);
            assert!(
                diff <= 3,
                "{a:?}->{b:?}: analytic {t_analytic} vs wormhole {t_wormhole}"
            );
        }
    }

    #[test]
    fn contention_raises_latency_over_zero_load() {
        let topo = Topology::mesh(6, 1);
        let route = |n_background: usize| -> u64 {
            let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
            for _ in 0..n_background {
                net.inject(Packet::new(
                    topo.tile(0, 0),
                    topo.tile(5, 0),
                    Plane::MmioIrq,
                    PacketKind::DmaBurst { flits: 8 },
                ));
            }
            // let the background stream fill the row's buffers first
            for _ in 0..8 {
                net.step();
            }
            let probe = pkt(&topo, (1, 0), (5, 0));
            let t0 = net.cycle();
            net.inject(probe);
            let d = net.run_until_idle(10_000);
            d.iter()
                .find(|x| x.packet == probe)
                .expect("probe delivered")
                .at_cycle
                - t0
        };
        assert!(route(6) > route(0), "{} vs {}", route(6), route(0));
    }

    #[test]
    fn throughput_saturates_under_offered_load() {
        // uniform-random traffic: accepted throughput grows with offered
        // load, then saturates well below 1 flit/cycle/tile (XY wormhole
        // on a mesh saturates around 30-60% of bisection)
        let topo = Topology::mesh(6, 6);
        let run = |packets: usize| -> f64 {
            let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
            let mut lcg = 12345u64;
            let mut next = || {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                (lcg >> 33) as usize % 36
            };
            for _ in 0..packets {
                let a = next();
                let mut b = next();
                if a == b {
                    b = (b + 1) % 36;
                }
                net.inject(Packet::new(
                    TileId(a),
                    TileId(b),
                    Plane::MmioIrq,
                    PacketKind::DmaBurst { flits: 4 },
                ));
            }
            net.run_until_idle(200_000);
            net.accepted_throughput()
        };
        let light = run(36);
        let heavy = run(720);
        assert!(heavy > light, "throughput should rise with load");
        assert!(heavy < 1.0, "cannot exceed one flit/cycle/tile: {heavy}");
    }

    #[test]
    fn random_traffic_always_delivers() {
        // delivery guarantee: XY routing on a mesh is deadlock-free, so
        // every packet must eventually arrive, whatever the pattern
        let topo = Topology::mesh(5, 5);
        let mut lcg = 99u64;
        let mut next = || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            (lcg >> 33) as usize % 25
        };
        for trial in 0..20 {
            let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
            let k = 10 + trial * 5;
            for _ in 0..k {
                let a = next();
                let b = next();
                net.inject(Packet::new(
                    TileId(a),
                    TileId(b),
                    Plane::MmioIrq,
                    PacketKind::CoinStatus { has: 1, max: 1 },
                ));
            }
            let d = net.run_until_idle(500_000);
            assert_eq!(d.len(), k, "trial {trial}: lost packets");
            assert!(net.is_idle());
        }
    }

    #[test]
    fn throughput_is_defined_before_first_cycle() {
        // Regression: the flits/cycle/tile divisor is 0 * len at cycle 0
        // (and 0 * 0 on a degenerate topology) — the metric must be a
        // finite 0.0, never NaN or infinity.
        let topo = Topology::mesh(3, 3);
        let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
        assert_eq!(net.accepted_throughput(), 0.0);
        net.inject(pkt(&topo, (0, 0), (2, 2)));
        assert_eq!(net.accepted_throughput(), 0.0, "still cycle 0 after inject");
        net.run_until_idle(1_000);
        let t = net.accepted_throughput();
        assert!(t.is_finite() && t > 0.0, "throughput after a run: {t}");
    }

    #[test]
    fn flit_oracle_is_clean_under_hotspot_load() {
        // The conservation audit runs every cycle in test builds; the
        // worst congestion pattern must record zero violations.
        let topo = Topology::mesh(5, 5);
        let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
        for i in 1..25 {
            net.inject(Packet::new(
                topo.tile_by_id(i),
                topo.tile_by_id(0),
                Plane::MmioIrq,
                PacketKind::DmaBurst { flits: 4 },
            ));
        }
        net.run_until_idle(10_000);
        assert!(net.is_idle());
        assert_eq!(net.oracle().count(), 0, "{:?}", net.oracle().first());
    }

    #[test]
    fn flit_oracle_catches_a_lost_flit() {
        // Sabotage the ledger the way a routing bug would (a flit vanishes
        // from a buffer) and check the oracle fires with full context.
        let topo = Topology::mesh(3, 3);
        let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
        net.inject(pkt(&topo, (0, 0), (2, 2)));
        net.step();
        net.step();
        // drop whatever flit is at the head of some occupied buffer
        let victim = net
            .routers
            .iter_mut()
            .flat_map(|r| r.inputs.iter_mut())
            .find(|b| !b.is_empty())
            .expect("a flit is in flight after two cycles");
        victim.pop_front();
        net.step();
        assert!(net.oracle().count() > 0, "oracle must notice the lost flit");
        let v = net.oracle().first().expect("kept violation");
        assert_eq!(v.invariant, Invariant::FlitConservation);
        assert!(v.replay_line().contains("invariant `flit-conservation`"));
    }

    #[test]
    fn router_visitation_order_is_immaterial() {
        // The tie-break claim in `WormholeConfig`: because free space is
        // snapshotted at cycle start and each (router, port) has a unique
        // upstream, per-packet delivery results are identical whatever
        // order the routers are visited in. Hotspot load is the pattern
        // with the most same-cycle contention, so it exercises the claim
        // hardest.
        let topo = Topology::mesh(5, 5);
        let run = |tie: TieBreak| {
            let mut net = WormholeNetwork::new(
                topo,
                WormholeConfig {
                    tie_break: tie,
                    ..WormholeConfig::default()
                },
            );
            for i in 1..25 {
                net.inject(Packet::new(
                    topo.tile_by_id(i),
                    topo.tile_by_id(0),
                    Plane::MmioIrq,
                    PacketKind::DmaBurst { flits: 4 },
                ));
            }
            let mut d: Vec<(usize, usize, u64, u64)> = net
                .run_until_idle(10_000)
                .iter()
                .map(|x| {
                    (
                        x.packet.src.index(),
                        x.packet.dst.index(),
                        x.at_cycle,
                        x.latency_cycles,
                    )
                })
                .collect();
            assert_eq!(net.oracle().count(), 0, "{:?}", net.oracle().first());
            d.sort_unstable(); // intra-cycle discovery order may legally differ
            d
        };
        let fifo = run(TieBreak::Fifo);
        assert_eq!(fifo, run(TieBreak::Lifo));
        assert_eq!(fifo, run(TieBreak::Permuted(0xD00D)));
        assert_eq!(fifo, run(TieBreak::Permuted(0xBEEF)));
    }

    #[test]
    fn deterministic_given_same_injections() {
        let topo = Topology::mesh(4, 4);
        let run = || {
            let mut net = WormholeNetwork::new(topo, WormholeConfig::default());
            for i in 0..8 {
                net.inject(pkt(&topo, (i % 4, 0), (3 - i % 4, 3)));
            }
            net.run_until_idle(10_000)
                .iter()
                .map(|d| d.at_cycle)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
