//! # blitzcoin-noc
//!
//! Cycle-level 2-D mesh network-on-chip model for the BlitzCoin
//! reproduction.
//!
//! BlitzCoin targets tile-based SoCs interconnected by a 2-D mesh,
//! multi-plane NoC (the open-source ESP platform in the paper). Every
//! quantity the paper reports — convergence time in NoC cycles, packets
//! exchanged, response time — is a property of messages moving across this
//! fabric, so the reproduction models it explicitly:
//!
//! - [`topology`]: grid coordinates, tile identifiers, mesh/torus neighbor
//!   maps (the torus variant implements the paper's *wrap-around*
//!   optimization, Fig 5), XY hop distances.
//! - [`packet`]: NoC planes (the ESP NoC has six; plane 5 carries
//!   memory-mapped register and interrupt traffic and — in the BlitzCoin
//!   integration — the new coin-management message class) and message kinds.
//! - [`network`]: a deterministic link-reservation timing model — XY
//!   dimension-ordered routing, one cycle per hop, per-link serialization
//!   and contention — that returns delivery times for scheduled packets.
//! - [`arbiter`]: the round-robin arbiter each tile's NoC-domain socket
//!   uses to multiplex plane-5 injections (BlitzCoin FSM vs. CSRs vs. the
//!   tile's register interface).
//! - [`wormhole`]: a flit-level wormhole router reference model that
//!   cross-validates the analytic timing model's latencies.
//!
//! # Example
//!
//! ```
//! use blitzcoin_noc::{Network, NetworkConfig, Packet, PacketKind, Plane, Topology};
//! use blitzcoin_sim::SimTime;
//!
//! let topo = Topology::mesh(4, 4);
//! let mut net = Network::new(topo, NetworkConfig::default());
//! let pkt = Packet::new(topo.tile(0, 0), topo.tile(3, 3), Plane::MmioIrq,
//!                       PacketKind::CoinRequest);
//! let arrival = net.send(SimTime::ZERO, &pkt).expect_delivered();
//! // 6 hops plus injection/ejection overhead
//! assert!(arrival >= SimTime::from_noc_cycles(6));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbiter;
pub mod network;
pub mod packet;
pub mod topology;
pub mod wormhole;

pub use arbiter::RoundRobinArbiter;
pub use network::{Delivery, Network, NetworkConfig, TrafficStats};
pub use packet::{Packet, PacketKind, Plane};
pub use topology::{Coord, Direction, TileId, Topology};
