//! Deterministic link-reservation timing model of the mesh NoC.
//!
//! The model captures what the paper's evaluation depends on:
//!
//! - XY dimension-ordered routing with **one cycle per hop** (the ESP NoC
//!   guarantees one-cycle-per-hop throughput at its fixed 800 MHz domain,
//!   Section IV-C);
//! - per-link **serialization**: a link is busy for one cycle per flit, so
//!   back-to-back messages on a shared link queue behind each other —
//!   this is how the paper's observation that "coin exchange messages may
//!   have to compete with other message types on the NoC" (Section IV-A)
//!   manifests;
//! - injection/ejection overhead at the source and destination sockets
//!   (voltage/frequency boundary-crossing synchronizers are on the tile
//!   side, not on plane-5's NoC-domain socket, so these are small).
//!
//! The model is a *timing* model: callers keep ownership of packet
//! payloads and use the returned delivery time to schedule delivery events
//! in their own event queue.

use std::collections::HashMap;

use blitzcoin_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::packet::Packet;
use crate::topology::{TileId, Topology};

/// Timing parameters of the NoC model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Cycles for a flit to traverse one router-to-router hop.
    pub hop_cycles: u64,
    /// Cycles to inject from the source socket into its local router.
    pub inject_cycles: u64,
    /// Cycles to eject from the destination router into its socket.
    pub eject_cycles: u64,
    /// Whether to model link contention (per-link serialization). When
    /// `false` the model returns pure zero-load latency, which is what the
    /// behavioural emulator of Section III assumes.
    pub contention: bool,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            hop_cycles: 1,
            inject_cycles: 1,
            eject_cycles: 1,
            contention: true,
        }
    }
}

/// Per-plane traffic accounting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Packets sent per plane (indexed by `Plane::index`).
    pub packets: [u64; 6],
    /// Flits sent per plane.
    pub flits: [u64; 6],
    /// Total hops traversed by all packets.
    pub hops: u64,
    /// Packets belonging to the coin-management message class.
    pub coin_packets: u64,
    /// Cumulative queueing delay (contention) suffered, in cycles.
    pub contention_cycles: u64,
}

impl TrafficStats {
    /// Total packets across all planes.
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Total flits across all planes.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }
}

/// The mesh NoC timing model.
///
/// # Example
///
/// ```
/// use blitzcoin_noc::{Network, NetworkConfig, Packet, PacketKind, Plane, Topology};
/// use blitzcoin_sim::SimTime;
///
/// let topo = Topology::mesh(3, 3);
/// let mut net = Network::new(topo, NetworkConfig::default());
/// let a = topo.tile(0, 0);
/// let b = topo.tile(1, 0);
/// let pkt = Packet::coin(a, b, PacketKind::CoinStatus { has: 3, max: 8 });
/// let t1 = net.send(SimTime::ZERO, &pkt);
/// // 1 inject + 1 hop + 1 eject = 3 cycles zero-load
/// assert_eq!(t1, SimTime::from_noc_cycles(3));
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    config: NetworkConfig,
    /// `(from, to, plane) -> earliest time the link is free`.
    link_free: HashMap<(TileId, TileId, usize), SimTime>,
    stats: TrafficStats,
}

impl Network {
    /// Creates a network over `topo` with the given timing parameters.
    pub fn new(topo: Topology, config: NetworkConfig) -> Self {
        Network {
            topo,
            config,
            link_free: HashMap::new(),
            stats: TrafficStats::default(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The timing configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets traffic statistics (link reservations are kept).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
    }

    /// Sends `packet` at time `now`; returns its delivery time at the
    /// destination socket and accounts traffic.
    ///
    /// A packet to the sending tile itself (loopback, e.g. a CSR access
    /// from the local BlitzCoin unit) costs injection + ejection only.
    pub fn send(&mut self, now: SimTime, packet: &Packet) -> SimTime {
        let plane = packet.plane.index();
        let flits = packet.flits() as u64;
        self.stats.packets[plane] += 1;
        self.stats.flits[plane] += flits;
        if packet.kind.is_coin_message() {
            self.stats.coin_packets += 1;
        }

        let route = self.topo.xy_route(packet.src, packet.dst);
        self.stats.hops += route.len() as u64;

        let mut cursor = now + SimTime::from_noc_cycles(self.config.inject_cycles);
        if self.config.contention {
            let mut prev = packet.src;
            for &next in &route {
                let key = (prev, next, plane);
                let free_at = self.link_free.get(&key).copied().unwrap_or(SimTime::ZERO);
                let depart = cursor.max(free_at);
                self.stats.contention_cycles += (depart - cursor).as_noc_cycles();
                self.link_free
                    .insert(key, depart + SimTime::from_noc_cycles(flits));
                cursor = depart + SimTime::from_noc_cycles(self.config.hop_cycles);
                prev = next;
            }
        } else {
            cursor += SimTime::from_noc_cycles(self.config.hop_cycles * route.len() as u64);
        }
        cursor + SimTime::from_noc_cycles(self.config.eject_cycles)
    }

    /// Zero-load latency bound for a packet from `src` to `dst` (no
    /// contention, no state change). Useful for analytical comparisons.
    pub fn latency_bound(&self, src: TileId, dst: TileId) -> SimTime {
        let hops = self.topo.hop_distance(src, dst) as u64;
        SimTime::from_noc_cycles(
            self.config.inject_cycles + self.config.hop_cycles * hops + self.config.eject_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketKind, Plane};

    fn coin_pkt(topo: &Topology, a: (usize, usize), b: (usize, usize)) -> Packet {
        Packet::coin(
            topo.tile(a.0, a.1),
            topo.tile(b.0, b.1),
            PacketKind::CoinStatus { has: 1, max: 2 },
        )
    }

    #[test]
    fn zero_load_latency_matches_bound() {
        let topo = Topology::mesh(5, 5);
        let mut net = Network::new(topo, NetworkConfig::default());
        let pkt = coin_pkt(&topo, (0, 0), (4, 4));
        let t = net.send(SimTime::ZERO, &pkt);
        assert_eq!(t, net.latency_bound(pkt.src, pkt.dst));
        assert_eq!(t, SimTime::from_noc_cycles(1 + 8 + 1));
    }

    #[test]
    fn loopback_costs_inject_plus_eject() {
        let topo = Topology::mesh(3, 3);
        let mut net = Network::new(topo, NetworkConfig::default());
        let a = topo.tile(1, 1);
        let pkt = Packet::new(a, a, Plane::MmioIrq, PacketKind::RegRead);
        assert_eq!(net.send(SimTime::ZERO, &pkt), SimTime::from_noc_cycles(2));
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let topo = Topology::mesh(3, 1);
        let mut net = Network::new(topo, NetworkConfig::default());
        let pkt = coin_pkt(&topo, (0, 0), (2, 0));
        let t1 = net.send(SimTime::ZERO, &pkt);
        let t2 = net.send(SimTime::ZERO, &pkt); // same instant, same links
        assert!(t2 > t1, "second packet must queue behind the first");
        assert!(net.stats().contention_cycles > 0);
    }

    #[test]
    fn different_planes_do_not_contend() {
        let topo = Topology::mesh(3, 1);
        let mut net = Network::new(topo, NetworkConfig::default());
        let a = topo.tile(0, 0);
        let b = topo.tile(2, 0);
        let p5 = Packet::new(a, b, Plane::MmioIrq, PacketKind::RegRead);
        let dma = Packet::new(a, b, Plane::Dma1, PacketKind::DmaBurst { flits: 16 });
        net.send(SimTime::ZERO, &dma);
        let t_p5 = net.send(SimTime::ZERO, &p5);
        // plane-5 packet must not queue behind the DMA burst on another plane
        assert_eq!(t_p5, net.latency_bound(a, b));
        assert_eq!(net.stats().contention_cycles, 0);
        // whereas a second burst on the same plane does queue
        net.send(SimTime::ZERO, &dma);
        assert!(net.stats().contention_cycles > 0);
    }

    #[test]
    fn contention_disabled_gives_zero_load() {
        let topo = Topology::mesh(3, 1);
        let mut net = Network::new(
            topo,
            NetworkConfig {
                contention: false,
                ..NetworkConfig::default()
            },
        );
        let pkt = coin_pkt(&topo, (0, 0), (2, 0));
        let t1 = net.send(SimTime::ZERO, &pkt);
        let t2 = net.send(SimTime::ZERO, &pkt);
        assert_eq!(t1, t2);
        assert_eq!(net.stats().contention_cycles, 0);
    }

    #[test]
    fn stats_accounting() {
        let topo = Topology::mesh(3, 3);
        let mut net = Network::new(topo, NetworkConfig::default());
        let pkt = coin_pkt(&topo, (0, 0), (2, 0));
        net.send(SimTime::ZERO, &pkt);
        net.send(SimTime::ZERO, &Packet::new(
            topo.tile(0, 0),
            topo.tile(0, 2),
            Plane::MmioIrq,
            PacketKind::RegWrite { value: 7 },
        ));
        let s = net.stats();
        assert_eq!(s.total_packets(), 2);
        assert_eq!(s.coin_packets, 1);
        assert_eq!(s.packets[Plane::MmioIrq.index()], 2);
        assert_eq!(s.hops, 4);
        assert_eq!(s.total_flits(), 4);
        net.reset_stats();
        assert_eq!(net.stats().total_packets(), 0);
    }

    #[test]
    fn later_send_after_link_free_sees_no_contention() {
        let topo = Topology::mesh(2, 1);
        let mut net = Network::new(topo, NetworkConfig::default());
        let pkt = coin_pkt(&topo, (0, 0), (1, 0));
        net.send(SimTime::ZERO, &pkt);
        let before = net.stats().contention_cycles;
        net.send(SimTime::from_noc_cycles(100), &pkt);
        assert_eq!(net.stats().contention_cycles, before);
    }
}
