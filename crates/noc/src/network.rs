//! Deterministic link-reservation timing model of the mesh NoC.
//!
//! The model captures what the paper's evaluation depends on:
//!
//! - XY dimension-ordered routing with **one cycle per hop** (the ESP NoC
//!   guarantees one-cycle-per-hop throughput at its fixed 800 MHz domain,
//!   Section IV-C);
//! - per-link **serialization**: a link is busy for one cycle per flit, so
//!   back-to-back messages on a shared link queue behind each other —
//!   this is how the paper's observation that "coin exchange messages may
//!   have to compete with other message types on the NoC" (Section IV-A)
//!   manifests;
//! - injection/ejection overhead at the source and destination sockets
//!   (voltage/frequency boundary-crossing synchronizers are on the tile
//!   side, not on plane-5's NoC-domain socket, so these are small).
//!
//! The model is a *timing* model: callers keep ownership of packet
//! payloads and use the returned delivery time to schedule delivery events
//! in their own event queue.

use blitzcoin_sim::{ClockDomain, ConfigError, FaultPlan, SimTime};

use crate::packet::Packet;
use crate::topology::{TileId, Topology};

/// Number of physical NoC planes (matches `Plane::index()` and the per-plane
/// arrays in [`TrafficStats`]).
const PLANES: usize = 6;

/// Outgoing link directions per tile for the dense reservation table: every
/// mesh link is uniquely `(source tile, one of 4 directions)`.
const LINK_DIRS: usize = 4;

/// The outcome of offering a packet to the NoC.
///
/// With no fault plan installed every send is [`Delivery::Delivered`];
/// under fault injection a packet can instead be lost to a random drop or
/// a link outage. Callers schedule a delivery event only for delivered
/// packets — a dropped packet simply never arrives, and it is the
/// *protocol's* job (timeouts, retries) to cope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The packet reaches the destination socket at this time.
    Delivered(SimTime),
    /// The packet is lost in flight and never arrives.
    Dropped,
}

impl Delivery {
    /// Delivery time, or `None` for a dropped packet.
    pub fn time(self) -> Option<SimTime> {
        match self {
            Delivery::Delivered(t) => Some(t),
            Delivery::Dropped => None,
        }
    }

    /// True when the packet was lost.
    pub fn is_dropped(self) -> bool {
        self == Delivery::Dropped
    }

    /// Unwraps the delivery time; panics on a dropped packet. For call
    /// sites that run with no fault plan (where drops are impossible).
    #[track_caller]
    pub fn expect_delivered(self) -> SimTime {
        match self {
            Delivery::Delivered(t) => t,
            Delivery::Dropped => panic!("packet dropped, but caller assumed fault-free delivery"),
        }
    }
}

/// Timing parameters of the NoC model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Cycles for a flit to traverse one router-to-router hop.
    pub hop_cycles: u64,
    /// Cycles to inject from the source socket into its local router.
    pub inject_cycles: u64,
    /// Cycles to eject from the destination router into its socket.
    pub eject_cycles: u64,
    /// Whether to model link contention (per-link serialization). When
    /// `false` the model returns pure zero-load latency, which is what the
    /// behavioural emulator of Section III assumes.
    pub contention: bool,
}

impl NetworkConfig {
    /// Validates the timing parameters: a router cannot forward a flit in
    /// zero cycles, and socket interface costs must be non-zero too (the
    /// calibration of DESIGN.md assumes at least one cycle per stage).
    pub fn validated(self) -> Result<Self, ConfigError> {
        for (what, v) in [
            ("hop_cycles", self.hop_cycles),
            ("inject_cycles", self.inject_cycles),
            ("eject_cycles", self.eject_cycles),
        ] {
            if v == 0 {
                return Err(ConfigError::NonPositive { what, value: 0.0 });
            }
        }
        Ok(self)
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            hop_cycles: 1,
            inject_cycles: 1,
            eject_cycles: 1,
            contention: true,
        }
    }
}

blitzcoin_sim::json_fields!(NetworkConfig {
    hop_cycles,
    inject_cycles,
    eject_cycles,
    contention
});

/// Per-plane traffic accounting.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    /// Packets sent per plane (indexed by `Plane::index`).
    pub packets: [u64; 6],
    /// Flits sent per plane.
    pub flits: [u64; 6],
    /// Total hops traversed by all packets.
    pub hops: u64,
    /// Packets belonging to the coin-management message class.
    pub coin_packets: u64,
    /// Cumulative queueing delay (contention) suffered, in cycles.
    pub contention_cycles: u64,
    /// Packets lost per plane (fault injection: drops and link outages).
    pub dropped: [u64; 6],
}

blitzcoin_sim::json_fields!(TrafficStats {
    packets,
    flits,
    hops,
    coin_packets,
    contention_cycles,
    dropped
});

impl TrafficStats {
    /// Total packets across all planes.
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Total flits across all planes.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Total packets lost across all planes.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }
}

/// The mesh NoC timing model.
///
/// # Example
///
/// ```
/// use blitzcoin_noc::{Network, NetworkConfig, Packet, PacketKind, Plane, Topology};
/// use blitzcoin_sim::SimTime;
///
/// let topo = Topology::mesh(3, 3);
/// let mut net = Network::new(topo, NetworkConfig::default());
/// let a = topo.tile(0, 0);
/// let b = topo.tile(1, 0);
/// let pkt = Packet::coin(a, b, PacketKind::CoinStatus { has: 3, max: 8 });
/// let t1 = net.send(SimTime::ZERO, &pkt).expect_delivered();
/// // 1 inject + 1 hop + 1 eject = 3 cycles zero-load
/// assert_eq!(t1, SimTime::from_noc_cycles(3));
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    config: NetworkConfig,
    /// Earliest time each `(link, plane)` is free, as a dense array indexed
    /// by [`Network::link_slot`]. Replaces a `HashMap` keyed on
    /// `(from, to, plane)`: `send` probes this table once per hop, and the
    /// hash+probe dominated the analytic model's profile.
    link_free: Vec<SimTime>,
    /// The routers' clock domain — every latency the model books is a
    /// whole number of this domain's ticks (the fabric runs entirely in
    /// the 800 MHz NoC power domain).
    clock: ClockDomain,
    stats: TrafficStats,
    fault: FaultPlan,
}

impl Network {
    /// Creates a network over `topo` with the given timing parameters and
    /// no fault injection.
    pub fn new(topo: Topology, config: NetworkConfig) -> Self {
        Network {
            topo,
            config,
            link_free: vec![SimTime::ZERO; topo.len() * LINK_DIRS * PLANES],
            clock: ClockDomain::NOC,
            stats: TrafficStats::default(),
            fault: FaultPlan::none(),
        }
    }

    /// Dense index of the `(prev -> next, plane)` reservation slot.
    ///
    /// The direction code only has to be injective per source tile, not
    /// meaningful: `+1`/`-1`/`+width`/`-width` id deltas map to the four
    /// slots. (On a 1-wide mesh `+1 == +width`, but then east links don't
    /// exist, so the shared slot still names a unique physical link.)
    #[inline]
    fn link_slot(&self, prev: TileId, next: TileId, plane: usize) -> usize {
        let dir = match next.0.wrapping_sub(prev.0) {
            1 => 0,
            d if d == self.topo.width() => 1,
            d if d == usize::MAX => 2, // -1: westbound
            _ => 3,                    // -width: northbound
        };
        (prev.0 * LINK_DIRS + dir) * PLANES + plane
    }

    /// Installs a fault plan; subsequent sends are subject to its drops,
    /// outages, and delays.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// The installed fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// The underlying topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The timing configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets traffic statistics (link reservations are kept).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
    }

    /// Dense-structure audit: the length of every per-tile container the
    /// analytic model owns, by name. `link_free` is the one dense table —
    /// `tiles * LINK_DIRS * PLANES` slots — and must stay O(tiles); the
    /// scaling tests assert linear growth between 8x8 and 16x16.
    pub fn structure_lens(&self) -> Vec<(&'static str, usize)> {
        vec![("link_free", self.link_free.len())]
    }

    /// Sends `packet` at time `now`; returns its [`Delivery`] outcome and
    /// accounts traffic.
    ///
    /// A packet to the sending tile itself (loopback, e.g. a CSR access
    /// from the local BlitzCoin unit) costs injection + ejection only.
    ///
    /// Fault injection, when a plan is installed:
    /// - a packet crossing a link inside an outage window is lost *at that
    ///   link* (upstream links were still occupied);
    /// - a per-plane random drop loses the packet at the destination
    ///   socket (a corrupted tail flit), so it consumes bandwidth along
    ///   its whole route — other packets' timing is unaffected by whether
    ///   this one ultimately survives;
    /// - extra per-hop delay and per-message jitter stretch the delivery
    ///   time without changing link reservations.
    pub fn send(&mut self, now: SimTime, packet: &Packet) -> Delivery {
        let plane = packet.plane.index();
        let flits = packet.flits() as u64;
        self.stats.packets[plane] += 1;
        self.stats.flits[plane] += flits;
        if packet.kind.is_coin_message() {
            self.stats.coin_packets += 1;
        }

        let hops = self.topo.hop_distance(packet.src, packet.dst) as u64;
        self.stats.hops += hops;
        let faults = !self.fault.is_empty();

        let mut cursor = now + self.clock.span(self.config.inject_cycles);
        if self.config.contention {
            let mut prev = packet.src;
            for next in self.topo.xy_hops(packet.src, packet.dst) {
                let slot = self.link_slot(prev, next, plane);
                let free_at = self.link_free[slot];
                let depart = cursor.max(free_at);
                if faults && self.fault.link_down(prev.0, next.0, depart.as_noc_cycles()) {
                    self.stats.dropped[plane] += 1;
                    return Delivery::Dropped;
                }
                self.stats.contention_cycles += (depart - cursor).as_noc_cycles();
                self.link_free[slot] = depart + self.clock.span(flits);
                cursor = depart + self.clock.span(self.config.hop_cycles);
                prev = next;
            }
        } else {
            if faults {
                let mut prev = packet.src;
                for next in self.topo.xy_hops(packet.src, packet.dst) {
                    if self.fault.link_down(prev.0, next.0, cursor.as_noc_cycles()) {
                        self.stats.dropped[plane] += 1;
                        return Delivery::Dropped;
                    }
                    prev = next;
                }
            }
            cursor += self.clock.span(self.config.hop_cycles * hops);
        }
        if faults {
            let cycle = now.as_noc_cycles();
            let (src, dst) = (packet.src.0, packet.dst.0);
            if self.fault.drops_packet(plane, src, dst, cycle) {
                self.stats.dropped[plane] += 1;
                return Delivery::Dropped;
            }
            let extra = self.fault.extra_hop_delay_cycles(src, dst, cycle, hops)
                + self.fault.msg_jitter(src, dst, cycle);
            cursor += self.clock.span(extra);
        }
        Delivery::Delivered(cursor + self.clock.span(self.config.eject_cycles))
    }

    /// Zero-load latency bound for a packet from `src` to `dst` (no
    /// contention, no state change). Useful for analytical comparisons.
    pub fn latency_bound(&self, src: TileId, dst: TileId) -> SimTime {
        let hops = self.topo.hop_distance(src, dst) as u64;
        self.clock.span(
            self.config.inject_cycles + self.config.hop_cycles * hops + self.config.eject_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketKind, Plane};

    fn coin_pkt(topo: &Topology, a: (usize, usize), b: (usize, usize)) -> Packet {
        Packet::coin(
            topo.tile(a.0, a.1),
            topo.tile(b.0, b.1),
            PacketKind::CoinStatus { has: 1, max: 2 },
        )
    }

    #[test]
    fn zero_load_latency_matches_bound() {
        let topo = Topology::mesh(5, 5);
        let mut net = Network::new(topo, NetworkConfig::default());
        let pkt = coin_pkt(&topo, (0, 0), (4, 4));
        let t = net.send(SimTime::ZERO, &pkt).expect_delivered();
        assert_eq!(t, net.latency_bound(pkt.src, pkt.dst));
        assert_eq!(t, SimTime::from_noc_cycles(1 + 8 + 1));
    }

    #[test]
    fn loopback_costs_inject_plus_eject() {
        let topo = Topology::mesh(3, 3);
        let mut net = Network::new(topo, NetworkConfig::default());
        let a = topo.tile(1, 1);
        let pkt = Packet::new(a, a, Plane::MmioIrq, PacketKind::RegRead);
        assert_eq!(
            net.send(SimTime::ZERO, &pkt),
            Delivery::Delivered(SimTime::from_noc_cycles(2))
        );
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let topo = Topology::mesh(3, 1);
        let mut net = Network::new(topo, NetworkConfig::default());
        let pkt = coin_pkt(&topo, (0, 0), (2, 0));
        let t1 = net.send(SimTime::ZERO, &pkt).expect_delivered();
        let t2 = net.send(SimTime::ZERO, &pkt).expect_delivered(); // same instant, same links
        assert!(t2 > t1, "second packet must queue behind the first");
        assert!(net.stats().contention_cycles > 0);
    }

    #[test]
    fn different_planes_do_not_contend() {
        let topo = Topology::mesh(3, 1);
        let mut net = Network::new(topo, NetworkConfig::default());
        let a = topo.tile(0, 0);
        let b = topo.tile(2, 0);
        let p5 = Packet::new(a, b, Plane::MmioIrq, PacketKind::RegRead);
        let dma = Packet::new(a, b, Plane::Dma1, PacketKind::DmaBurst { flits: 16 });
        net.send(SimTime::ZERO, &dma);
        let t_p5 = net.send(SimTime::ZERO, &p5).expect_delivered();
        // plane-5 packet must not queue behind the DMA burst on another plane
        assert_eq!(t_p5, net.latency_bound(a, b));
        assert_eq!(net.stats().contention_cycles, 0);
        // whereas a second burst on the same plane does queue
        net.send(SimTime::ZERO, &dma);
        assert!(net.stats().contention_cycles > 0);
    }

    #[test]
    fn contention_disabled_gives_zero_load() {
        let topo = Topology::mesh(3, 1);
        let mut net = Network::new(
            topo,
            NetworkConfig {
                contention: false,
                ..NetworkConfig::default()
            },
        );
        let pkt = coin_pkt(&topo, (0, 0), (2, 0));
        let t1 = net.send(SimTime::ZERO, &pkt);
        let t2 = net.send(SimTime::ZERO, &pkt);
        assert_eq!(t1, t2);
        assert!(!t1.is_dropped());
        assert_eq!(net.stats().contention_cycles, 0);
    }

    #[test]
    fn stats_accounting() {
        let topo = Topology::mesh(3, 3);
        let mut net = Network::new(topo, NetworkConfig::default());
        let pkt = coin_pkt(&topo, (0, 0), (2, 0));
        net.send(SimTime::ZERO, &pkt);
        net.send(
            SimTime::ZERO,
            &Packet::new(
                topo.tile(0, 0),
                topo.tile(0, 2),
                Plane::MmioIrq,
                PacketKind::RegWrite { value: 7 },
            ),
        );
        let s = net.stats();
        assert_eq!(s.total_packets(), 2);
        assert_eq!(s.coin_packets, 1);
        assert_eq!(s.packets[Plane::MmioIrq.index()], 2);
        assert_eq!(s.hops, 4);
        assert_eq!(s.total_flits(), 4);
        net.reset_stats();
        assert_eq!(net.stats().total_packets(), 0);
    }

    #[test]
    fn later_send_after_link_free_sees_no_contention() {
        let topo = Topology::mesh(2, 1);
        let mut net = Network::new(topo, NetworkConfig::default());
        let pkt = coin_pkt(&topo, (0, 0), (1, 0));
        net.send(SimTime::ZERO, &pkt);
        let before = net.stats().contention_cycles;
        net.send(SimTime::from_noc_cycles(100), &pkt);
        assert_eq!(net.stats().contention_cycles, before);
    }

    #[test]
    fn link_outage_drops_packets_only_inside_window() {
        let topo = Topology::mesh(3, 1);
        let mut net = Network::new(topo, NetworkConfig::default());
        let a = topo.tile(1, 0).0;
        let b = topo.tile(2, 0).0;
        net.set_fault_plan(FaultPlan {
            outages: vec![blitzcoin_sim::LinkOutage {
                a,
                b,
                from_cycle: 100,
                until_cycle: 200,
            }],
            ..FaultPlan::default()
        });
        let pkt = coin_pkt(&topo, (0, 0), (2, 0));
        assert!(!net.send(SimTime::ZERO, &pkt).is_dropped());
        assert!(net.send(SimTime::from_noc_cycles(150), &pkt).is_dropped());
        assert!(!net.send(SimTime::from_noc_cycles(300), &pkt).is_dropped());
        assert_eq!(net.stats().total_dropped(), 1);
        // A packet not crossing the dead link is unaffected mid-window.
        let short = coin_pkt(&topo, (0, 0), (1, 0));
        assert!(!net.send(SimTime::from_noc_cycles(150), &short).is_dropped());
    }

    #[test]
    fn random_drops_are_deterministic_and_roughly_calibrated() {
        let topo = Topology::mesh(4, 4);
        let run = |seed: u64| {
            let mut net = Network::new(topo, NetworkConfig::default());
            net.set_fault_plan(FaultPlan {
                seed,
                drop_prob: vec![0.2],
                ..FaultPlan::default()
            });
            let pkt = coin_pkt(&topo, (0, 0), (3, 3));
            let outcomes: Vec<bool> = (0..2_000u64)
                .map(|i| {
                    net.send(SimTime::from_noc_cycles(i * 10), &pkt)
                        .is_dropped()
                })
                .collect();
            (outcomes, net.stats().total_dropped())
        };
        let (o1, d1) = run(7);
        let (o2, d2) = run(7);
        assert_eq!(o1, o2, "same plan seed must reproduce the same drops");
        assert_eq!(d1, d2);
        let rate = d1 as f64 / 2_000.0;
        assert!((rate - 0.2).abs() < 0.05, "drop rate {rate} far from 0.2");
        let (o3, _) = run(8);
        assert_ne!(o1, o3, "different plan seed should differ somewhere");
    }

    #[test]
    fn extra_hop_delay_stretches_latency_within_bound() {
        let topo = Topology::mesh(4, 1);
        let mut plain = Network::new(topo, NetworkConfig::default());
        let mut faulty = Network::new(topo, NetworkConfig::default());
        faulty.set_fault_plan(FaultPlan {
            seed: 3,
            extra_hop_delay_max_cycles: 5,
            ..FaultPlan::default()
        });
        let pkt = coin_pkt(&topo, (0, 0), (3, 0));
        let mut widened = false;
        for i in 0..64u64 {
            let t = SimTime::from_noc_cycles(i * 100);
            let base = plain.send(t, &pkt).expect_delivered();
            let slow = faulty.send(t, &pkt).expect_delivered();
            assert!(slow >= base);
            assert!(slow - base <= SimTime::from_noc_cycles(3 * 5));
            widened |= slow > base;
        }
        assert!(widened, "extra hop delay never materialized");
    }

    #[test]
    fn empty_plan_is_free_of_fault_effects() {
        let topo = Topology::mesh(3, 3);
        let mut plain = Network::new(topo, NetworkConfig::default());
        let mut with_plan = Network::new(topo, NetworkConfig::default());
        with_plan.set_fault_plan(FaultPlan::none());
        let pkt = coin_pkt(&topo, (0, 0), (2, 2));
        for i in 0..16u64 {
            let t = SimTime::from_noc_cycles(i * 7);
            assert_eq!(plain.send(t, &pkt), with_plan.send(t, &pkt));
        }
        assert_eq!(with_plan.stats().total_dropped(), 0);
    }
}
