//! Grid topology: coordinates, tile identifiers, neighbor maps.
//!
//! BlitzCoin's design focuses on 2-D mesh NoC architectures (Section IV).
//! The coin exchange pairs each tile with its north/south/east/west
//! neighbors; the *wrap-around* optimization (Section III-D, Fig 5) extends
//! the neighbor definition to the opposite edge so corner and edge tiles
//! keep four partners. Both variants are provided here.

use blitzcoin_sim::ConfigError;
use std::fmt;

/// Identifier of a tile within a topology: `id = y * width + x`, matching
/// the row-major numbering of Fig 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TileId(pub usize);

impl TileId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<usize> for TileId {
    fn from(v: usize) -> Self {
        TileId(v)
    }
}

impl blitzcoin_sim::json::ToJson for TileId {
    fn to_json(&self) -> blitzcoin_sim::json::Json {
        blitzcoin_sim::json::ToJson::to_json(&self.0)
    }
}

impl blitzcoin_sim::json::FromJson for TileId {
    fn from_json(v: &blitzcoin_sim::json::Json) -> Result<Self, blitzcoin_sim::json::JsonError> {
        Ok(TileId(<usize as blitzcoin_sim::json::FromJson>::from_json(
            v,
        )?))
    }
}

/// A grid coordinate (column `x`, row `y`), origin at the north-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column, `0..width`.
    pub x: usize,
    /// Row, `0..height`.
    pub y: usize,
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// The four mesh directions used by the coin exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Towards row 0.
    North,
    /// Towards row `height-1`.
    South,
    /// Towards column `width-1`.
    East,
    /// Towards column 0.
    West,
}

impl Direction {
    /// All four directions in the round-robin order used by the exchange
    /// scheduler (N, E, S, W).
    pub const ALL: [Direction; 4] = [
        Direction::North,
        Direction::East,
        Direction::South,
        Direction::West,
    ];

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }
}

/// A rectangular grid of tiles, with or without wrap-around (torus) edges.
///
/// # Example
///
/// ```
/// use blitzcoin_noc::{Direction, Topology};
///
/// // Fig 5 (left): on a wrap-around 3x3 grid, corner tile 0's neighbors
/// // are 1, 2, 3 and 6.
/// let t = Topology::torus(3, 3);
/// let mut n: Vec<usize> = t.neighbors(t.tile_by_id(0)).iter().map(|t| t.index()).collect();
/// n.sort_unstable();
/// assert_eq!(n, [1, 2, 3, 6]);
///
/// // Without wrap-around the same corner tile has only 2 neighbors.
/// let m = Topology::mesh(3, 3);
/// assert_eq!(m.neighbors(m.tile_by_id(0)).len(), 2);
/// assert_eq!(m.neighbor(m.tile_by_id(0), Direction::North), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    width: usize,
    height: usize,
    wraparound: bool,
}

impl blitzcoin_sim::json::ToJson for Topology {
    fn to_json(&self) -> blitzcoin_sim::json::Json {
        blitzcoin_sim::json::Json::Obj(vec![
            (
                "width".to_string(),
                blitzcoin_sim::json::ToJson::to_json(&self.width),
            ),
            (
                "height".to_string(),
                blitzcoin_sim::json::ToJson::to_json(&self.height),
            ),
            (
                "wraparound".to_string(),
                blitzcoin_sim::json::ToJson::to_json(&self.wraparound),
            ),
        ])
    }
}

impl blitzcoin_sim::json::FromJson for Topology {
    fn from_json(v: &blitzcoin_sim::json::Json) -> Result<Self, blitzcoin_sim::json::JsonError> {
        Ok(Topology {
            width: v.field("width")?,
            height: v.field("height")?,
            wraparound: v.field("wraparound")?,
        })
    }
}

impl Topology {
    /// Creates a plain mesh (no wrap-around).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn mesh(width: usize, height: usize) -> Self {
        Self::try_mesh(width, height).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Topology::mesh`]: returns an error instead of panicking
    /// on zero or over-large dimensions.
    pub fn try_mesh(width: usize, height: usize) -> Result<Self, ConfigError> {
        Self::check_dims(width, height)?;
        Ok(Topology {
            width,
            height,
            wraparound: false,
        })
    }

    /// Creates a torus (mesh with wrap-around neighbor links, Fig 5 left).
    ///
    /// Note: wrap-around affects *neighbor pairing* for the coin exchange;
    /// packet routing distance still uses the physical mesh unless the two
    /// tiles are adjacent through the wrap link, which the ESP integration
    /// realizes as ordinary (multi-hop) plane-5 messages. We model the
    /// conservative choice: routing distance is always physical-mesh XY.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn torus(width: usize, height: usize) -> Self {
        Self::try_torus(width, height).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Topology::torus`]: returns an error instead of panicking
    /// on zero or over-large dimensions.
    pub fn try_torus(width: usize, height: usize) -> Result<Self, ConfigError> {
        Self::check_dims(width, height)?;
        Ok(Topology {
            width,
            height,
            wraparound: true,
        })
    }

    /// Validates grid dimensions with overflow-checked sizing: the tile
    /// count `width * height` must not wrap, and must leave headroom for
    /// every dense per-tile structure sized from it (the largest constant
    /// fan-out in the tree is the analytic NoC's `tiles * 4 dirs * 6
    /// planes` link table; 64x covers it with margin). Anything larger
    /// would silently overflow an allocation size somewhere downstream,
    /// so it is rejected here, at the only place grids are made.
    fn check_dims(width: usize, height: usize) -> Result<(), ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::ZeroDimension { width, height });
        }
        let fits = width
            .checked_mul(height)
            .and_then(|n| n.checked_mul(64))
            .is_some();
        if !fits {
            return Err(ConfigError::GridTooLarge { width, height });
        }
        Ok(())
    }

    /// Creates a square topology of dimension `d`; wrap-around per flag.
    pub fn square(d: usize, wraparound: bool) -> Self {
        if wraparound {
            Topology::torus(d, d)
        } else {
            Topology::mesh(d, d)
        }
    }

    /// Grid width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether neighbor pairing wraps around the edges.
    pub fn is_wraparound(&self) -> bool {
        self.wraparound
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Whether the grid is empty (never true; dimensions are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The tile at `(x, y)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of range.
    pub fn tile(&self, x: usize, y: usize) -> TileId {
        assert!(x < self.width && y < self.height, "coordinate out of range");
        TileId(y * self.width + x)
    }

    /// The tile with raw index `id`.
    ///
    /// # Panics
    /// Panics if `id >= len()`.
    pub fn tile_by_id(&self, id: usize) -> TileId {
        assert!(id < self.len(), "tile id out of range");
        TileId(id)
    }

    /// The coordinate of a tile.
    pub fn coord(&self, tile: TileId) -> Coord {
        Coord {
            x: tile.0 % self.width,
            y: tile.0 / self.width,
        }
    }

    /// Iterates over all tiles in row-major order.
    pub fn tiles(&self) -> impl Iterator<Item = TileId> + '_ {
        (0..self.len()).map(TileId)
    }

    /// The neighbor of `tile` in `dir`, or `None` at a non-wrapping edge.
    ///
    /// On a 1-wide (or 1-tall) torus the wrap neighbor would be the tile
    /// itself; `None` is returned instead since self-exchanges are
    /// meaningless.
    pub fn neighbor(&self, tile: TileId, dir: Direction) -> Option<TileId> {
        let c = self.coord(tile);
        let (nx, ny) = match dir {
            Direction::North => {
                if c.y > 0 {
                    (c.x, c.y - 1)
                } else if self.wraparound && self.height > 1 {
                    (c.x, self.height - 1)
                } else {
                    return None;
                }
            }
            Direction::South => {
                if c.y + 1 < self.height {
                    (c.x, c.y + 1)
                } else if self.wraparound && self.height > 1 {
                    (c.x, 0)
                } else {
                    return None;
                }
            }
            Direction::East => {
                if c.x + 1 < self.width {
                    (c.x + 1, c.y)
                } else if self.wraparound && self.width > 1 {
                    (0, c.y)
                } else {
                    return None;
                }
            }
            Direction::West => {
                if c.x > 0 {
                    (c.x - 1, c.y)
                } else if self.wraparound && self.width > 1 {
                    (self.width - 1, c.y)
                } else {
                    return None;
                }
            }
        };
        Some(self.tile(nx, ny))
    }

    /// All existing neighbors of `tile` in N, E, S, W order, deduplicated
    /// (a 2-wide torus would otherwise list the same tile twice).
    pub fn neighbors(&self, tile: TileId) -> Vec<TileId> {
        let mut out = Vec::with_capacity(4);
        for dir in Direction::ALL {
            if let Some(n) = self.neighbor(tile, dir) {
                if n != tile && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Whether two tiles are neighbors (under this topology's pairing).
    pub fn are_neighbors(&self, a: TileId, b: TileId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// XY (Manhattan) hop distance on the physical mesh, ignoring wrap
    /// links (see [`Topology::torus`] for why).
    pub fn hop_distance(&self, a: TileId, b: TileId) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// The XY route from `a` to `b`: X first, then Y, as dimension-ordered
    /// routing does. Returns the sequence of tiles visited, excluding `a`,
    /// including `b`. Empty when `a == b`.
    pub fn xy_route(&self, a: TileId, b: TileId) -> Vec<TileId> {
        self.xy_hops(a, b).collect()
    }

    /// Iterator form of [`Topology::xy_route`]: yields the same tile
    /// sequence hop by hop without allocating, for the per-packet routing
    /// walk in the timing model's hot path.
    pub fn xy_hops(&self, a: TileId, b: TileId) -> XyHops {
        let ca = self.coord(a);
        let cb = self.coord(b);
        XyHops {
            width: self.width,
            x: ca.x,
            y: ca.y,
            tx: cb.x,
            ty: cb.y,
        }
    }

    /// The mesh diameter (max hop distance between any two tiles).
    pub fn diameter(&self) -> usize {
        (self.width - 1) + (self.height - 1)
    }
}

/// Allocation-free XY-route iterator; see [`Topology::xy_hops`].
#[derive(Debug, Clone)]
pub struct XyHops {
    width: usize,
    x: usize,
    y: usize,
    tx: usize,
    ty: usize,
}

impl Iterator for XyHops {
    type Item = TileId;

    fn next(&mut self) -> Option<TileId> {
        if self.x != self.tx {
            self.x = if self.tx > self.x {
                self.x + 1
            } else {
                self.x - 1
            };
        } else if self.y != self.ty {
            self.y = if self.ty > self.y {
                self.y + 1
            } else {
                self.y - 1
            };
        } else {
            return None;
        }
        Some(TileId(self.y * self.width + self.x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.x.abs_diff(self.tx) + self.y.abs_diff(self.ty);
        (n, Some(n))
    }
}

impl ExactSizeIterator for XyHops {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_round_trip() {
        let t = Topology::mesh(4, 3);
        for id in 0..t.len() {
            let tile = t.tile_by_id(id);
            let c = t.coord(tile);
            assert_eq!(t.tile(c.x, c.y), tile);
        }
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn mesh_interior_neighbors() {
        let t = Topology::mesh(3, 3);
        let center = t.tile(1, 1); // tile 4
        let mut n: Vec<usize> = t.neighbors(center).iter().map(|x| x.index()).collect();
        n.sort_unstable();
        assert_eq!(n, [1, 3, 5, 7]);
    }

    #[test]
    fn mesh_corner_and_edge_neighbors() {
        let t = Topology::mesh(3, 3);
        assert_eq!(t.neighbors(t.tile(0, 0)).len(), 2);
        assert_eq!(t.neighbors(t.tile(1, 0)).len(), 3);
        assert_eq!(t.neighbor(t.tile(0, 0), Direction::West), None);
        assert_eq!(t.neighbor(t.tile(2, 2), Direction::South), None);
    }

    #[test]
    fn torus_fig5_example() {
        // Fig 5 (left): tile 0 of a wrap-around 3x3 grid neighbors 1,2,3,6.
        let t = Topology::torus(3, 3);
        let mut n: Vec<usize> = t
            .neighbors(t.tile_by_id(0))
            .iter()
            .map(|x| x.index())
            .collect();
        n.sort_unstable();
        assert_eq!(n, [1, 2, 3, 6]);
        // every tile of a torus has exactly 4 neighbors when d >= 3
        for tile in t.tiles() {
            assert_eq!(t.neighbors(tile).len(), 4, "tile {tile}");
        }
    }

    #[test]
    fn torus_degenerate_dims_no_self_pairing() {
        let t = Topology::torus(1, 4);
        for tile in t.tiles() {
            assert!(!t.neighbors(tile).contains(&tile));
        }
        let t2 = Topology::torus(2, 2);
        for tile in t2.tiles() {
            // each tile has 2 distinct neighbors (wrap duplicates removed)
            assert_eq!(t2.neighbors(tile).len(), 2);
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        for topo in [Topology::mesh(5, 4), Topology::torus(5, 4)] {
            for a in topo.tiles() {
                for b in topo.neighbors(a) {
                    assert!(topo.are_neighbors(b, a), "{a} <-> {b}");
                }
            }
        }
    }

    #[test]
    fn direction_opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
        let t = Topology::mesh(4, 4);
        let a = t.tile(1, 1);
        for d in Direction::ALL {
            let b = t.neighbor(a, d).unwrap();
            assert_eq!(t.neighbor(b, d.opposite()), Some(a));
        }
    }

    #[test]
    fn hop_distance_and_route() {
        let t = Topology::mesh(4, 4);
        let a = t.tile(0, 0);
        let b = t.tile(3, 2);
        assert_eq!(t.hop_distance(a, b), 5);
        let route = t.xy_route(a, b);
        assert_eq!(route.len(), 5);
        assert_eq!(*route.last().unwrap(), b);
        // X-first: first three hops move along row 0
        assert_eq!(route[0], t.tile(1, 0));
        assert_eq!(route[1], t.tile(2, 0));
        assert_eq!(route[2], t.tile(3, 0));
        assert_eq!(route[3], t.tile(3, 1));
        assert_eq!(t.xy_route(a, a), Vec::<TileId>::new());
    }

    #[test]
    fn xy_hops_matches_xy_route_everywhere() {
        for topo in [
            Topology::mesh(5, 3),
            Topology::mesh(1, 6),
            Topology::mesh(7, 1),
        ] {
            for a in topo.tiles() {
                for b in topo.tiles() {
                    let route = topo.xy_route(a, b);
                    let hops: Vec<TileId> = topo.xy_hops(a, b).collect();
                    assert_eq!(hops, route, "{a} -> {b}");
                    assert_eq!(topo.xy_hops(a, b).len(), topo.hop_distance(a, b));
                }
            }
        }
    }

    #[test]
    fn diameter() {
        assert_eq!(Topology::mesh(4, 4).diameter(), 6);
        assert_eq!(Topology::mesh(1, 1).diameter(), 0);
        assert_eq!(Topology::mesh(20, 20).diameter(), 38);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_out_of_range_panics() {
        Topology::mesh(2, 2).tile(2, 0);
    }

    #[test]
    fn try_mesh_checks_dimensions() {
        assert!(matches!(
            Topology::try_mesh(0, 5),
            Err(ConfigError::ZeroDimension { .. })
        ));
        assert!(matches!(
            Topology::try_torus(5, 0),
            Err(ConfigError::ZeroDimension { .. })
        ));
        // width * height itself overflows usize...
        assert!(matches!(
            Topology::try_mesh(usize::MAX, 2),
            Err(ConfigError::GridTooLarge { .. })
        ));
        // ...and so does a product that fits but leaves no headroom for
        // the dense per-tile structures sized from it (x64).
        assert!(matches!(
            Topology::try_mesh(1 << 60, 1 << 3),
            Err(ConfigError::GridTooLarge { .. })
        ));
        // Mega-mesh sides stay fine.
        assert_eq!(Topology::try_mesh(32, 32).unwrap().len(), 1024);
    }
}
