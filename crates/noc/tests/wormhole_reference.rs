//! Differential property test for the wormhole stepper.
//!
//! `WormholeNetwork::step` went through an allocation-free rewrite
//! (precomputed route/next-hop tables, owned scratch buffers, a flat
//! link-crossing list). This test pins its behavior against a naive
//! reference implementation written the obvious way — fresh coordinate
//! comparisons per flit, per-cycle allocations, per-router grouping of
//! incoming flits — on random topologies, buffer depths, and traffic,
//! stepped in lockstep. Any divergence in a delivery (packet, cycle, or
//! latency) fails with the trial's seed-derived parameters.

use std::collections::VecDeque;

use blitzcoin_noc::wormhole::{Delivery, WormholeConfig, WormholeNetwork};
use blitzcoin_noc::{Direction, Packet, PacketKind, Plane, TileId, Topology};

const PORTS: usize = 5;
const LOCAL: usize = 4;

struct RefFlight {
    packet: Packet,
    injected_at: u64,
    flits_left: u32,
}

#[derive(Clone, Copy)]
struct RefFlit {
    flight: usize,
    is_tail: bool,
}

struct RefRouter {
    inputs: [VecDeque<RefFlit>; PORTS],
    out_owner: [Option<usize>; PORTS],
    rr: [usize; PORTS],
}

/// The reference: identical semantics to `WormholeNetwork`, none of its
/// optimizations. Routing recomputes coordinates per flit, every cycle
/// allocates its snapshot/claim/incoming structures, and link crossings
/// are grouped per destination router before being applied.
struct RefWormhole {
    topo: Topology,
    buffer_flits: usize,
    routers: Vec<RefRouter>,
    flights: Vec<RefFlight>,
    inject_queue: Vec<VecDeque<usize>>,
    cycle: u64,
}

impl RefWormhole {
    fn new(topo: Topology, buffer_flits: usize) -> Self {
        RefWormhole {
            topo,
            buffer_flits,
            routers: (0..topo.len())
                .map(|_| RefRouter {
                    inputs: std::array::from_fn(|_| VecDeque::new()),
                    out_owner: [None; PORTS],
                    rr: [0; PORTS],
                })
                .collect(),
            flights: Vec::new(),
            inject_queue: vec![VecDeque::new(); topo.len()],
            cycle: 0,
        }
    }

    fn inject(&mut self, packet: Packet) {
        let src = packet.src.index();
        let flits = packet.flits();
        let id = self.flights.len();
        self.flights.push(RefFlight {
            packet,
            injected_at: self.cycle,
            flits_left: flits,
        });
        self.inject_queue[src].push_back(id);
    }

    /// XY dimension-ordered output port, recomputed from coordinates.
    fn route_port(&self, r: usize, flight: usize) -> usize {
        let here = self.topo.coord(TileId(r));
        let there = self.topo.coord(self.flights[flight].packet.dst);
        if here.x < there.x {
            2
        } else if here.x > there.x {
            3
        } else if here.y < there.y {
            1
        } else if here.y > there.y {
            0
        } else {
            LOCAL
        }
    }

    fn next_hop(&self, r: usize, port: usize) -> (usize, usize) {
        use Direction::*;
        let dir = [North, South, East, West][port];
        let t = self
            .topo
            .neighbor(TileId(r), dir)
            .expect("XY routing never leaves the mesh");
        (t.index(), port ^ 1)
    }

    fn step(&mut self) -> Vec<Delivery> {
        self.cycle += 1;
        let n = self.topo.len();
        let mut deliveries = Vec::new();
        // snapshot of free slots at cycle start, allocated fresh
        let free: Vec<[usize; PORTS]> = self
            .routers
            .iter()
            .map(|router| {
                let mut f = [0; PORTS];
                for (p, buf) in router.inputs.iter().enumerate() {
                    f[p] = self.buffer_flits - buf.len().min(self.buffer_flits);
                }
                f
            })
            .collect();
        let mut claimed = vec![[0usize; PORTS]; n];
        let mut incoming: Vec<Vec<(usize, RefFlit)>> = vec![Vec::new(); n];

        for r in 0..n {
            for out in 0..PORTS {
                let owner = match self.routers[r].out_owner[out] {
                    Some(inp) => Some(inp),
                    None => {
                        let start = self.routers[r].rr[out];
                        (0..PORTS).map(|k| (start + k) % PORTS).find(|&inp| {
                            self.routers[r].inputs[inp]
                                .front()
                                .map(|f| self.route_port(r, f.flight) == out)
                                .unwrap_or(false)
                        })
                    }
                };
                let Some(inp) = owner else { continue };
                let Some(&flit) = self.routers[r].inputs[inp].front() else {
                    continue;
                };
                if self.route_port(r, flit.flight) != out {
                    continue;
                }
                if out == LOCAL {
                    let f = self.routers[r].inputs[inp].pop_front().expect("head");
                    if f.is_tail {
                        self.routers[r].out_owner[out] = None;
                        let flight = &self.flights[f.flight];
                        deliveries.push(Delivery {
                            packet: flight.packet,
                            at_cycle: self.cycle,
                            latency_cycles: self.cycle - flight.injected_at,
                        });
                    } else {
                        self.routers[r].out_owner[out] = Some(inp);
                    }
                    self.routers[r].rr[out] = (inp + 1) % PORTS;
                    continue;
                }
                let (next, next_port) = self.next_hop(r, out);
                if free[next][next_port] > claimed[next][next_port] {
                    claimed[next][next_port] += 1;
                    let f = self.routers[r].inputs[inp].pop_front().expect("head");
                    self.routers[r].out_owner[out] = if f.is_tail { None } else { Some(inp) };
                    self.routers[r].rr[out] = (inp + 1) % PORTS;
                    incoming[next].push((next_port, f));
                }
            }
        }
        for (r, list) in incoming.into_iter().enumerate() {
            for (port, flit) in list {
                self.routers[r].inputs[port].push_back(flit);
            }
        }

        for src in 0..n {
            let Some(&flight_id) = self.inject_queue[src].front() else {
                continue;
            };
            let local_free =
                self.buffer_flits - self.routers[src].inputs[LOCAL].len().min(self.buffer_flits);
            if local_free == 0 {
                continue;
            }
            let flight = &mut self.flights[flight_id];
            flight.flits_left -= 1;
            let is_tail = flight.flits_left == 0;
            self.routers[src].inputs[LOCAL].push_back(RefFlit {
                flight: flight_id,
                is_tail,
            });
            if is_tail {
                self.inject_queue[src].pop_front();
            }
        }
        deliveries
    }

    fn is_idle(&self) -> bool {
        self.inject_queue.iter().all(VecDeque::is_empty)
            && self
                .routers
                .iter()
                .all(|r| r.inputs.iter().all(VecDeque::is_empty))
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
    *state >> 33
}

#[test]
fn wormhole_matches_naive_reference_on_random_traffic() {
    let mut seed = 0xB1177C01u64;
    let mut next = move |m: usize| lcg(&mut seed) as usize % m;
    for trial in 0..40 {
        let w = 1 + next(6);
        let h = 1 + next(6);
        let topo = Topology::mesh(w, h);
        let n = topo.len();
        let buffer_flits = 1 + next(6);
        let mut opt = WormholeNetwork::new(
            topo,
            WormholeConfig {
                buffer_flits,
                ..WormholeConfig::default()
            },
        );
        let mut reference = RefWormhole::new(topo, buffer_flits);

        let mut remaining = 1 + next(30);
        let mut injected = 0usize;
        let mut delivered = 0usize;
        for cycle in 0..20_000u64 {
            // staggered injection: a small random burst on random cycles,
            // so traffic arrives both into an idle and a loaded network
            if remaining > 0 && next(3) == 0 {
                let burst = 1 + next(remaining.min(4));
                for _ in 0..burst {
                    let pkt = Packet::new(
                        TileId(next(n)),
                        TileId(next(n)),
                        Plane::Dma1,
                        PacketKind::DmaBurst {
                            flits: 1 + next(6) as u32,
                        },
                    );
                    opt.inject(pkt);
                    reference.inject(pkt);
                }
                remaining -= burst;
                injected += burst;
            }
            let d_ref = reference.step();
            let d_opt = opt.step();
            assert_eq!(
                d_opt, d_ref,
                "trial {trial} ({w}x{h}, {buffer_flits}-flit buffers) \
                 diverged at cycle {cycle}"
            );
            delivered += d_opt.len();
            if remaining == 0 && delivered == injected {
                break;
            }
        }
        assert_eq!(delivered, injected, "trial {trial}: packets lost");
        assert!(opt.is_idle() && reference.is_idle(), "trial {trial}");
        assert_eq!(opt.delivered_packets(), injected as u64);
    }
}

#[test]
fn wormhole_matches_naive_reference_under_hotspot() {
    // all-to-one is the worst contention pattern: every output-port
    // arbitration and buffer-full backpressure path gets exercised
    let topo = Topology::mesh(5, 5);
    let mut opt = WormholeNetwork::new(topo, WormholeConfig::default());
    let mut reference = RefWormhole::new(topo, WormholeConfig::default().buffer_flits);
    for i in 1..25 {
        let pkt = Packet::new(
            topo.tile_by_id(i),
            topo.tile_by_id(0),
            Plane::MmioIrq,
            PacketKind::DmaBurst { flits: 4 },
        );
        opt.inject(pkt);
        reference.inject(pkt);
    }
    let mut total = 0;
    for cycle in 0..10_000u64 {
        let d_ref = reference.step();
        let d_opt = opt.step();
        assert_eq!(d_opt, d_ref, "diverged at cycle {cycle}");
        total += d_opt.len();
        if total == 24 {
            break;
        }
    }
    assert_eq!(total, 24);
    assert!(opt.is_idle() && reference.is_idle());
}
