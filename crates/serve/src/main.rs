//! `blitzcoin-serve` — the sweep server CLI.
//!
//! ```text
//! blitzcoin-serve [--addr HOST:PORT] [--cache-dir DIR] [--cache on|off|refresh]
//! ```
//!
//! Binds the address (default `127.0.0.1:7370`), opens the
//! content-addressed result cache over `DIR` (default
//! `results/.cache`, shared with `blitzcoin-exp`), and answers sweep
//! submissions until killed. `--cache` follows the same semantics as
//! the experiment runner's flag and likewise defaults to the
//! `BLITZCOIN_CACHE` environment variable when set.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;

use blitzcoin_serve::{Server, PROTOCOL_VERSION};
use blitzcoin_sim::{Cache, CacheMode};

fn main() {
    let mut addr = "127.0.0.1:7370".to_string();
    let mut cache_dir = PathBuf::from("results/.cache");
    let mut mode = CacheMode::from_env().unwrap_or(CacheMode::On);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage("--addr needs a value")),
            "--cache-dir" => {
                cache_dir = PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--cache-dir needs a value")),
                );
            }
            "--cache" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage("--cache needs a value"));
                mode = CacheMode::parse(&value)
                    .unwrap_or_else(|| usage(&format!("bad --cache value `{value}`")));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let dir = match mode {
        CacheMode::Off => None,
        _ => Some(cache_dir.clone()),
    };
    let listener = TcpListener::bind(&addr)
        .unwrap_or_else(|e| panic!("blitzcoin-serve: cannot bind {addr}: {e}"));
    eprintln!(
        "blitzcoin-serve: protocol v{PROTOCOL_VERSION}, listening on {addr}, cache {mode} ({})",
        dir.as_deref()
            .map_or("memory only".into(), |d| d.display().to_string())
    );
    Server::new(Arc::new(Cache::new(dir, mode))).serve(listener);
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("blitzcoin-serve: {error}\n");
    }
    eprintln!(
        "usage: blitzcoin-serve [--addr HOST:PORT] [--cache-dir DIR] [--cache on|off|refresh]"
    );
    std::process::exit(if error.is_empty() { 0 } else { 2 });
}
