//! A long-lived sweep server in front of the content-addressed result
//! cache.
//!
//! `blitzcoin-serve` accepts sweep submissions over plain HTTP/JSON and
//! answers them from the shared [`Cache`]: every grid point is a
//! [`Simulation`] unit addressed by [`Simulation::cache_key`], so
//! repeated submissions — from one client or many — hit instead of
//! recomputing, and *concurrent* submissions of the same point coalesce
//! on the cache's in-flight claim: exactly one computation runs, every
//! waiter receives its result. Disjoint requests never queue behind each
//! other; each connection is served on its own thread and blocks only on
//! the specific keys it asked for.
//!
//! The protocol is deliberately minimal and versioned:
//!
//! - `GET /v1/health` → `{"ok": true, "version": 1}`
//! - `POST /v1/sweep` with a [`SweepRequest`] body → an ndjson stream of
//!   `{"type":"progress","done":d,"total":n}` lines followed by one
//!   `{"type":"result","response":{...}}` line carrying the
//!   [`SweepResponse`], which reports per-request cache hits, misses,
//!   and wall time.
//!
//! A [`SweepRequest`] whose `version` does not match
//! [`PROTOCOL_VERSION`] is rejected up front, so struct evolution can
//! never be misread as garbage results.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use blitzcoin_sim::json::{FromJson, Json, ToJson};
use blitzcoin_sim::Cache;
use blitzcoin_soc::engine::{SimConfig, Simulation};
use blitzcoin_soc::manager::ManagerKind;
use blitzcoin_soc::{floorplan, workload};

/// Version of the request/response structs. Bump on any incompatible
/// field change; requests carrying another version are rejected.
pub const PROTOCOL_VERSION: u32 = 1;

/// A sweep submission: the full grid
/// `managers × budgets_mw × seeds` over one SoC floorplan and workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Must equal [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Floorplan preset: `3x3`, `4x4`, or `6x6`.
    pub soc: String,
    /// Frames of the AV-parallel workload to run.
    pub frames: usize,
    /// Manager kinds, parsed via [`ManagerKind::from_str`]
    /// (the figure short names: `BC`, `BC-C`, `C-RR`, `TS`, `PT`, `Static`).
    pub managers: Vec<String>,
    /// Accelerator power budgets (mW).
    pub budgets_mw: Vec<f64>,
    /// Run seeds.
    pub seeds: Vec<u64>,
}

blitzcoin_sim::json_fields!(SweepRequest {
    version,
    soc,
    frames,
    managers,
    budgets_mw,
    seeds,
});

/// One grid point's summary, in grid order
/// (managers outermost, seeds innermost).
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The manager this point ran.
    pub manager: String,
    /// The budget this point ran at (mW).
    pub budget_mw: f64,
    /// The seed this point ran under.
    pub seed: u64,
    /// Workload makespan (µs).
    pub exec_time_us: f64,
    /// Mean activity-change response time (µs), when any were measured.
    pub mean_response_us: Option<f64>,
    /// Whether the cache served this point without recomputing.
    pub cache_hit: bool,
}

blitzcoin_sim::json_fields!(PointResult {
    manager,
    budget_mw,
    seed,
    exec_time_us,
    mean_response_us,
    cache_hit,
});

/// The answer to a [`SweepRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResponse {
    /// Echoes [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Per-point summaries, in grid order.
    pub points: Vec<PointResult>,
    /// Points this request served from cache (including waits on another
    /// request's in-flight computation).
    pub cache_hits: u64,
    /// Points this request computed itself.
    pub cache_misses: u64,
    /// Wall time spent answering, in milliseconds.
    pub wall_ms: f64,
}

blitzcoin_sim::json_fields!(SweepResponse {
    version,
    points,
    cache_hits,
    cache_misses,
    wall_ms,
});

/// Expands and runs a sweep against `cache`, invoking
/// `progress(done, total)` after each point. This is the whole of the
/// server's business logic; the HTTP layer only frames it.
pub fn run_sweep(
    cache: &Cache,
    req: &SweepRequest,
    mut progress: impl FnMut(usize, usize),
) -> Result<SweepResponse, String> {
    if req.version != PROTOCOL_VERSION {
        return Err(format!(
            "unsupported protocol version {} (this server speaks {PROTOCOL_VERSION})",
            req.version
        ));
    }
    let soc = match req.soc.as_str() {
        "3x3" => floorplan::soc_3x3(),
        "4x4" => floorplan::soc_4x4(),
        "6x6" => floorplan::soc_6x6(),
        other => return Err(format!("unknown soc preset `{other}`")),
    };
    if req.frames == 0 {
        return Err("frames must be positive".into());
    }
    let managers: Vec<ManagerKind> = req
        .managers
        .iter()
        .map(|m| m.parse().map_err(|e| format!("manager `{m}`: {e}")))
        .collect::<Result<_, String>>()?;
    let total = managers.len() * req.budgets_mw.len() * req.seeds.len();
    if total == 0 {
        return Err("empty sweep grid".into());
    }

    let t0 = Instant::now();
    let wl = workload::av_parallel(&soc, req.frames);
    let mut points = Vec::with_capacity(total);
    let mut hits = 0u64;
    for (mi, &manager) in managers.iter().enumerate() {
        for &budget_mw in &req.budgets_mw {
            let cfg = SimConfig::try_new(manager, budget_mw)
                .map_err(|e| format!("budget {budget_mw}: {e}"))?;
            for &seed in &req.seeds {
                let sim = Simulation::new(soc.clone(), wl.clone(), cfg);
                let (report, hit) = blitzcoin_soc::cached::run_cached(cache, &sim, seed);
                hits += u64::from(hit);
                points.push(PointResult {
                    manager: req.managers[mi].clone(),
                    budget_mw,
                    seed,
                    exec_time_us: report.exec_time_us(),
                    mean_response_us: report.mean_response_us(),
                    cache_hit: hit,
                });
                progress(points.len(), total);
            }
        }
    }
    Ok(SweepResponse {
        version: PROTOCOL_VERSION,
        cache_hits: hits,
        cache_misses: total as u64 - hits,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        points,
    })
}

/// The server: a shared cache plus an accept loop.
#[derive(Debug)]
pub struct Server {
    cache: Arc<Cache>,
}

impl Server {
    /// Creates a server answering sweeps from `cache`.
    pub fn new(cache: Arc<Cache>) -> Server {
        Server { cache }
    }

    /// Serves `listener` forever, one thread per connection. Connection
    /// errors are logged and never take the server down.
    pub fn serve(&self, listener: TcpListener) {
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let cache = Arc::clone(&self.cache);
                    std::thread::spawn(move || {
                        if let Err(e) = handle(&cache, stream) {
                            eprintln!("blitzcoin-serve: connection error: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("blitzcoin-serve: accept error: {e}"),
            }
        }
    }
}

/// Reads one HTTP request, routes it, writes the response.
fn handle(cache: &Cache, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return respond_error(stream, 400, "malformed request line"),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }

    match (method.as_str(), path.as_str()) {
        ("GET", "/v1/health") => respond_json(
            stream,
            &format!("{{\"ok\": true, \"version\": {PROTOCOL_VERSION}}}"),
        ),
        ("POST", "/v1/sweep") => {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let req = match std::str::from_utf8(&body)
                .map_err(|e| e.to_string())
                .and_then(|text| Json::parse(text).map_err(|e| e.to_string()))
                .and_then(|json| SweepRequest::from_json(&json).map_err(|e| e.to_string()))
            {
                Ok(req) => req,
                Err(e) => return respond_error(stream, 400, &format!("bad sweep request: {e}")),
            };
            respond_sweep(cache, stream, &req)
        }
        _ => respond_error(stream, 404, "no such endpoint"),
    }
}

/// Streams a sweep answer as ndjson: progress lines, then the result
/// (or an error line if the request fails validation).
fn respond_sweep(cache: &Cache, mut stream: TcpStream, req: &SweepRequest) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )?;
    // Progress write failures (client hung up mid-stream) must not poison
    // the sweep itself: keep computing so the cache still fills.
    let result = run_sweep(cache, req, |done, total| {
        let _ = stream.write_all(
            format!("{{\"type\":\"progress\",\"done\":{done},\"total\":{total}}}\n").as_bytes(),
        );
        let _ = stream.flush();
    });
    let last = match result {
        Ok(resp) => {
            let mut line = String::from("{\"type\":\"result\",\"response\":");
            line.push_str(&resp.to_json().to_string());
            line.push('}');
            line
        }
        Err(e) => {
            let mut line = String::from("{\"type\":\"error\",\"error\":");
            line.push_str(&Json::Str(e).to_string());
            line.push('}');
            line
        }
    };
    stream.write_all(last.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn respond_json(mut stream: TcpStream, body: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn respond_error(mut stream: TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let body = format!("{{\"error\": {}}}", Json::Str(message.to_string()));
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// A minimal blocking client for the sweep protocol — used by the
/// integration tests and handy for scripting against a running server.
pub mod client {
    use super::*;
    use std::net::SocketAddr;

    /// Submits `req` to the server at `addr` and returns the final
    /// response plus every `(done, total)` progress pair seen on the
    /// stream.
    pub fn submit(
        addr: SocketAddr,
        req: &SweepRequest,
    ) -> Result<(SweepResponse, Vec<(usize, usize)>), String> {
        let body = req.to_json().to_string();
        let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        write!(
            stream,
            "POST /v1/sweep HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .map_err(|e| e.to_string())?;
        stream.flush().map_err(|e| e.to_string())?;

        let mut text = String::new();
        BufReader::new(stream)
            .read_to_string(&mut text)
            .map_err(|e| e.to_string())?;
        let payload = text
            .split_once("\r\n\r\n")
            .ok_or("malformed http response")?
            .1;

        let mut progress = Vec::new();
        let mut response = None;
        for line in payload.lines().filter(|l| !l.trim().is_empty()) {
            let json = Json::parse(line).map_err(|e| format!("bad stream line: {e}"))?;
            match json.field::<String>("type").as_deref() {
                Ok("progress") => {
                    progress.push((
                        json.field("done").unwrap_or(0),
                        json.field("total").unwrap_or(0),
                    ));
                }
                Ok("result") => {
                    let inner = json.get("response").ok_or("result line without response")?;
                    response = Some(SweepResponse::from_json(inner).map_err(|e| e.to_string())?);
                }
                Ok("error") => {
                    return Err(json.field::<String>("error").unwrap_or_default());
                }
                _ => return Err(format!("unknown stream line: {line}")),
            }
        }
        response
            .map(|r| (r, progress))
            .ok_or_else(|| "stream ended without a result".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> SweepRequest {
        SweepRequest {
            version: PROTOCOL_VERSION,
            soc: "3x3".into(),
            frames: 1,
            managers: vec!["BC".into(), "Static".into()],
            budgets_mw: vec![120.0],
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn request_and_response_round_trip() {
        let req = request();
        let back =
            SweepRequest::from_json(&Json::parse(&req.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, req);

        let resp = SweepResponse {
            version: PROTOCOL_VERSION,
            points: vec![PointResult {
                manager: "BC".into(),
                budget_mw: 120.0,
                seed: 1,
                exec_time_us: 42.5,
                mean_response_us: None,
                cache_hit: true,
            }],
            cache_hits: 1,
            cache_misses: 0,
            wall_ms: 3.25,
        };
        let back =
            SweepResponse::from_json(&Json::parse(&resp.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn sweep_runs_grid_in_order_and_hits_on_repeat() {
        let cache = Cache::in_memory();
        let req = request();
        let mut seen = Vec::new();
        let first = run_sweep(&cache, &req, |d, t| seen.push((d, t))).unwrap();
        assert_eq!(first.points.len(), 4);
        assert_eq!(seen, vec![(1, 4), (2, 4), (3, 4), (4, 4)]);
        assert_eq!((first.cache_hits, first.cache_misses), (0, 4));
        let order: Vec<(&str, u64)> = first
            .points
            .iter()
            .map(|p| (p.manager.as_str(), p.seed))
            .collect();
        assert_eq!(order, [("BC", 1), ("BC", 2), ("Static", 1), ("Static", 2)]);

        let second = run_sweep(&cache, &req, |_, _| {}).unwrap();
        assert_eq!((second.cache_hits, second.cache_misses), (4, 0));
        for (a, b) in first.points.iter().zip(&second.points) {
            assert_eq!(a.exec_time_us, b.exec_time_us);
            assert_eq!(a.mean_response_us, b.mean_response_us);
        }
    }

    #[test]
    fn sweep_rejects_bad_requests() {
        let cache = Cache::in_memory();
        let wrong_version = SweepRequest {
            version: PROTOCOL_VERSION + 1,
            ..request()
        };
        assert!(run_sweep(&cache, &wrong_version, |_, _| {})
            .unwrap_err()
            .contains("protocol version"));
        let bad_soc = SweepRequest {
            soc: "9x9".into(),
            ..request()
        };
        assert!(run_sweep(&cache, &bad_soc, |_, _| {})
            .unwrap_err()
            .contains("unknown soc"));
        let empty = SweepRequest {
            managers: vec![],
            ..request()
        };
        assert!(run_sweep(&cache, &empty, |_, _| {})
            .unwrap_err()
            .contains("empty sweep grid"));
    }
}
