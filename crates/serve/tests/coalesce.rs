//! End-to-end tests of the sweep server: request coalescing through the
//! shared cache, progress streaming, and independence of disjoint
//! requests.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use blitzcoin_serve::{client, Server, SweepRequest, PROTOCOL_VERSION};
use blitzcoin_sim::Cache;

fn start_server() -> (Arc<Cache>, SocketAddr) {
    let cache = Arc::new(Cache::in_memory());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = Server::new(Arc::clone(&cache));
    thread::spawn(move || server.serve(listener));
    (cache, addr)
}

fn grid(seeds: Vec<u64>) -> SweepRequest {
    SweepRequest {
        version: PROTOCOL_VERSION,
        soc: "3x3".into(),
        frames: 1,
        managers: vec!["BC".into(), "Static".into()],
        budgets_mw: vec![120.0],
        seeds,
    }
}

#[test]
fn concurrent_identical_sweeps_compute_each_point_once() {
    let (cache, addr) = start_server();
    let req = grid(vec![1, 2]);

    // Two clients race the same 4-point grid. The cache's in-flight
    // claim is the only synchronization: whichever client reaches a key
    // first computes it, the other waits and receives the same value.
    let (a, b) = thread::scope(|s| {
        let ta = s.spawn(|| client::submit(addr, &req).expect("client a"));
        let tb = s.spawn(|| client::submit(addr, &req).expect("client b"));
        (ta.join().expect("join a"), tb.join().expect("join b"))
    });

    // Exactly one computation per unique point across both requests.
    let stats = cache.stats();
    assert_eq!(stats.misses, 4, "each grid point computed exactly once");
    assert_eq!(a.0.cache_misses + b.0.cache_misses, 4);
    assert_eq!(a.0.cache_hits + b.0.cache_hits, 4);

    // Both clients see identical results. `cache_hit` legitimately
    // differs between the racing clients; everything the sweep
    // *measured* must not.
    let strip = |pts: &[blitzcoin_serve::PointResult]| {
        pts.iter()
            .cloned()
            .map(|mut p| {
                p.cache_hit = false;
                p
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(a.0.points.len(), 4);
    assert_eq!(strip(&a.0.points), strip(&b.0.points));

    // Progress streamed all the way to done == total.
    assert_eq!(a.1.last(), Some(&(4, 4)));
    assert_eq!(b.1.last(), Some(&(4, 4)));
}

#[test]
fn warm_resubmission_is_all_hits() {
    let (_cache, addr) = start_server();
    let req = grid(vec![9]);
    let (cold, _) = client::submit(addr, &req).expect("cold submit");
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 2));
    let (warm, _) = client::submit(addr, &req).expect("warm submit");
    assert_eq!((warm.cache_hits, warm.cache_misses), (2, 0));
    for (a, b) in cold.points.iter().zip(&warm.points) {
        assert_eq!(a.exec_time_us, b.exec_time_us);
        assert_eq!(a.mean_response_us, b.mean_response_us);
    }
}

#[test]
fn disjoint_request_is_not_blocked_by_a_long_sweep() {
    let (_cache, addr) = start_server();

    // A long-running sweep (many seeds = many distinct computations) ...
    let long = grid((0..12).collect());
    let long_done = Arc::new(AtomicBool::new(false));
    let long_thread = {
        let long_done = Arc::clone(&long_done);
        thread::spawn(move || {
            let r = client::submit(addr, &long).expect("long sweep");
            long_done.store(true, Ordering::SeqCst);
            r
        })
    };

    // ... must not delay a disjoint one-point request on another
    // connection: its key is never claimed by the long sweep, so it only
    // waits for its own computation.
    let small = SweepRequest {
        seeds: vec![777],
        managers: vec!["BC".into()],
        ..grid(vec![])
    };
    let (small_resp, _) = client::submit(addr, &small).expect("small sweep");
    assert_eq!(small_resp.points.len(), 1);
    assert_eq!(small_resp.cache_misses, 1);
    assert!(
        !long_done.load(Ordering::SeqCst),
        "the 1-point request must finish while the 24-point sweep is still running"
    );

    let (long_resp, _) = long_thread.join().expect("join long");
    assert_eq!(long_resp.points.len(), 24);
    assert_eq!(long_resp.cache_misses, 24);
}

#[test]
fn health_and_errors_over_http() {
    use std::io::{Read, Write};
    let (_cache, addr) = start_server();

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET /v1/health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200"));
    assert!(text.contains("\"ok\": true"));

    // A version-mismatched submission is answered with a typed error.
    let bad = SweepRequest {
        version: PROTOCOL_VERSION + 1,
        ..grid(vec![1])
    };
    let err = client::submit(addr, &bad).expect_err("must reject");
    assert!(err.contains("protocol version"), "got: {err}");

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 404"));
}
