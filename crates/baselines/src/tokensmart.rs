//! TokenSmart: ring-based sequential token exchange.
//!
//! TokenSmart (TS) is the closest prior art to BlitzCoin — also
//! decentralized, also token-quantized — but its token pool is passed
//! *sequentially* from tile to tile around a ring. In the default *greedy*
//! mode each visited tile takes enough tokens from the pool to reach its
//! target (or deposits its excess). When a tile has been starved for a
//! specified duration, the global policy switches to a *fair* mode that
//! targets an equal token count per active tile; after a hold-off it
//! switches back. Because the pool visits one tile at a time, convergence
//! time scales O(N), and the greedy/fair oscillation produces the
//! long-tail outliers visible in Fig 4.

use blitzcoin_core::metrics::{global_error, worst_case_error};
use blitzcoin_core::TileState;
use blitzcoin_sim::{FaultPlan, SimRng};

/// TokenSmart configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsConfig {
    /// NoC cycles for the pool to hop to the next ring stop and be
    /// processed (the serpentine ring maps to 1 mesh hop, plus the take /
    /// deposit FSM work).
    pub visit_cycles: u64,
    /// Visits a tile may remain starved (holding under half its target)
    /// before the global policy switches to fair mode.
    pub starvation_visits: u64,
    /// Visits the fair mode is held before reverting to greedy.
    pub fair_hold_visits: u64,
    /// Convergence threshold on the global error (mean coins per tile).
    pub err_threshold: f64,
    /// Hard stop, in NoC cycles.
    pub max_cycles: u64,
}

blitzcoin_sim::json_fields!(TsConfig {
    visit_cycles,
    starvation_visits,
    fair_hold_visits,
    err_threshold,
    max_cycles
});

impl Default for TsConfig {
    fn default() -> Self {
        TsConfig {
            visit_cycles: 6,
            starvation_visits: 64,
            fair_hold_visits: 32,
            err_threshold: 1.0,
            max_cycles: 10_000_000,
        }
    }
}

/// Outcome of a TokenSmart run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsResult {
    /// Whether the error crossed the threshold.
    pub converged: bool,
    /// NoC cycles until convergence (or the run end).
    pub cycles: u64,
    /// Ring messages (pool handoffs) until convergence.
    pub packets: u64,
    /// Number of greedy→fair mode switches observed.
    pub mode_switches: u64,
    /// Whether the pool landed on a dead ring stop and circulation halted
    /// (see [`TokenSmart::fail_tile_at`]).
    pub ring_broken: bool,
    /// Global error at the end.
    pub final_error: f64,
    /// Worst per-tile error at the end.
    pub worst_error: f64,
}

/// Global policy mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Greedy,
    Fair,
}

/// The TokenSmart ring simulator.
#[derive(Debug, Clone)]
pub struct TokenSmart {
    tiles: Vec<TileState>,
    pool: i64,
    config: TsConfig,
    mode: Mode,
    starved_for: Vec<u64>,
    fair_remaining: u64,
    cursor: usize,
    mode_switches: u64,
    /// A planned tile death on the ring: `(tile, at_cycle)`.
    fault: Option<(usize, u64)>,
    ring_broken: bool,
}

impl TokenSmart {
    /// Creates a ring of tiles with the given `max` targets; `pool` tokens
    /// start in the circulating pool (tiles start empty).
    pub fn new(max: Vec<u64>, pool: u64, config: TsConfig) -> Self {
        let n = max.len();
        assert!(n > 0, "need at least one tile");
        TokenSmart {
            tiles: max.into_iter().map(|m| TileState::new(0, m)).collect(),
            pool: pool as i64,
            config,
            mode: Mode::Greedy,
            starved_for: vec![0; n],
            fair_remaining: 0,
            cursor: 0,
            mode_switches: 0,
            fault: None,
            ring_broken: false,
        }
    }

    /// Creates a ring whose tiles already hold `has` coins (the SoC
    /// engine's boot state: budget pre-split across tiles, pool empty).
    /// The engine drives this machine one [`TokenSmart::visit_once`] at a
    /// time so the greedy/fair token-passing FSM exists exactly once.
    pub fn with_holdings(max: Vec<u64>, has: Vec<i64>, pool: i64, config: TsConfig) -> Self {
        assert_eq!(max.len(), has.len(), "max/has length mismatch");
        let mut ts = TokenSmart::new(max, 0, config);
        ts.pool = pool;
        for (t, h) in ts.tiles.iter_mut().zip(has) {
            t.has = h;
        }
        ts
    }

    /// Updates a ring stop's target (an activity change: the tile became
    /// active with `max > 0`, or went idle with `max = 0`).
    pub fn set_max(&mut self, idx: usize, max: u64) {
        self.tiles[idx].max = max;
    }

    /// The ring stop the pool will visit next.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Greedy→fair mode switches observed so far.
    pub fn mode_switches(&self) -> u64 {
        self.mode_switches
    }

    /// Schedules tile `tile` to die at `at_cycle` (NoC cycles). The pool
    /// is passed sequentially, so when it next reaches the dead stop,
    /// circulation halts and every token still in transit is trapped with
    /// the corpse: the ring itself is TokenSmart's single point of
    /// failure, unlike BlitzCoin's all-pairs gossip where any live
    /// neighbor can route around a death.
    pub fn fail_tile_at(&mut self, tile: usize, at_cycle: u64) {
        assert!(tile < self.tiles.len(), "tile {tile} outside the ring");
        self.fault = Some((tile, at_cycle));
    }

    /// Applies a [`FaultPlan`]'s tile faults: the earliest planned fault
    /// inside the ring breaks it. Both kinds kill circulation — a
    /// fail-stopped stop forwards nothing, and a stuck one forwards
    /// nothing either.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let first = plan
            .tile_faults
            .iter()
            .filter(|f| f.tile < self.tiles.len())
            .min_by_key(|f| (f.at_cycle, f.tile));
        if let Some(f) = first {
            self.fail_tile_at(f.tile, f.at_cycle);
        }
    }

    /// Whether the pool reached a dead ring stop and circulation halted.
    pub fn ring_broken(&self) -> bool {
        self.ring_broken
    }

    /// Scatters existing holdings across tiles (pool keeps the remainder
    /// of `total` after the scatter); mirrors the emulator's random
    /// initialization so Fig 4 compares like for like.
    pub fn init_uniform_random(&mut self, rng: &mut SimRng) {
        let mut total = self.pool + self.tiles.iter().map(|t| t.has).sum::<i64>();
        for t in &mut self.tiles {
            let hi = if t.max > 0 { 2 * t.max as i64 } else { 63 };
            let take = rng.range_i64(0..hi + 1).min(total);
            t.has = take;
            total -= take;
        }
        self.pool = total;
    }

    /// Tile states (for inspection).
    pub fn tiles(&self) -> &[TileState] {
        &self.tiles
    }

    /// Tokens currently in the circulating pool.
    pub fn pool(&self) -> i64 {
        self.pool
    }

    /// Total tokens in the system (pool + held).
    pub fn total_tokens(&self) -> i64 {
        self.pool + self.tiles.iter().map(|t| t.has).sum::<i64>()
    }

    /// The per-tile target under the current mode and pool ratio.
    fn target(&self, idx: usize) -> i64 {
        let t = &self.tiles[idx];
        if t.max == 0 {
            return 0;
        }
        match self.mode {
            Mode::Greedy => {
                // greedy: every tile wants its own full target
                t.max as i64
            }
            Mode::Fair => {
                let active = self.tiles.iter().filter(|t| t.is_active()).count() as i64;
                let total = self.total_tokens();
                if active == 0 {
                    0
                } else {
                    total / active
                }
            }
        }
    }

    /// One pool visit at the cursor tile; advances the ring. Returns the
    /// signed token movement at the visited stop (positive = taken from
    /// the pool, negative = deposited); zero means the visit left the
    /// allocation untouched — the engine's settle detector counts a full
    /// zero-movement revolution as quiescence.
    pub fn visit_once(&mut self) -> i64 {
        let idx = self.cursor;
        self.cursor = (self.cursor + 1) % self.tiles.len();
        let target = self.target(idx);
        let t = &mut self.tiles[idx];
        let mut moved: i64 = 0;
        if t.has < target {
            let take = (target - t.has).min(self.pool.max(0));
            t.has += take;
            self.pool -= take;
            moved = take;
        } else if t.has > target {
            let give = t.has - target;
            t.has -= give;
            self.pool += give;
            moved = -give;
        }
        // starvation accounting (greedy mode only)
        let starved = t.is_active() && t.has * 2 < t.max as i64;
        if starved {
            self.starved_for[idx] += 1;
        } else {
            self.starved_for[idx] = 0;
        }
        match self.mode {
            Mode::Greedy => {
                if self.starved_for[idx] >= self.config.starvation_visits {
                    self.mode = Mode::Fair;
                    self.fair_remaining = self.fair_hold();
                    self.mode_switches += 1;
                    self.starved_for.iter_mut().for_each(|s| *s = 0);
                }
            }
            Mode::Fair => {
                self.fair_remaining = self.fair_remaining.saturating_sub(1);
                if self.fair_remaining == 0 {
                    self.mode = Mode::Greedy;
                }
            }
        }
        moved
    }

    fn fair_hold(&self) -> u64 {
        // hold fair mode for at least one full ring revolution
        self.config.fair_hold_visits.max(self.tiles.len() as u64)
    }

    /// Runs until the proportional-allocation error crosses the threshold
    /// or `max_cycles` elapse. The error metric is identical to
    /// BlitzCoin's (Section III-E) so Fig 4 compares the same quantity;
    /// tokens still in the pool count as undelivered error.
    pub fn run(&mut self, _rng: &mut SimRng) -> TsResult {
        let mut cycles: u64 = 0;
        let mut packets: u64 = 0;
        let mut converged = false;
        while cycles < self.config.max_cycles {
            if let Some((ft, at)) = self.fault {
                if cycles >= at && self.cursor == ft {
                    // the pool lands on the corpse and never leaves: burn
                    // the remaining horizon without converging
                    self.ring_broken = true;
                    cycles = self.config.max_cycles;
                    break;
                }
            }
            self.visit_once();
            cycles += self.config.visit_cycles;
            packets += 1;
            // the pool itself is undistributed budget: count it against
            // convergence by measuring error with the pool folded in as a
            // virtual inactive tile holding `pool` coins.
            let err = self.error();
            if err < self.config.err_threshold {
                converged = true;
                break;
            }
        }
        TsResult {
            converged,
            cycles,
            packets,
            mode_switches: self.mode_switches,
            ring_broken: self.ring_broken,
            final_error: self.error(),
            worst_error: self.worst_error(),
        }
    }

    /// The BlitzCoin-comparable global error: mean |has − α·max| with the
    /// circulating pool counted as held-by-nobody (pure error mass).
    pub fn error(&self) -> f64 {
        let n = self.tiles.len() as f64;
        global_error(&self.tiles) + self.pool.unsigned_abs() as f64 / n
    }

    /// Worst per-tile error.
    pub fn worst_error(&self) -> f64 {
        worst_case_error(&self.tiles).max(self.pool.unsigned_abs() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_pool_to_equal_targets() {
        let mut ts = TokenSmart::new(vec![32; 10], 320, TsConfig::default());
        let r = ts.run(&mut SimRng::seed(1));
        assert!(r.converged, "{r:?}");
        assert_eq!(ts.pool(), 0);
        for t in ts.tiles() {
            assert_eq!(t.has, 32);
        }
    }

    #[test]
    fn conserves_tokens() {
        let mut ts = TokenSmart::new(vec![16, 32, 64, 8], 60, TsConfig::default());
        let before = ts.total_tokens();
        ts.run(&mut SimRng::seed(2));
        assert_eq!(ts.total_tokens(), before);
    }

    #[test]
    fn undersubscribed_pool_converges_via_fair_mode() {
        // Demand (10 x 32 = 320) far exceeds supply (100): greedy starves
        // late-ring tiles until the watchdog flips to fair.
        let mut ts = TokenSmart::new(vec![32; 10], 100, TsConfig::default());
        let r = ts.run(&mut SimRng::seed(3));
        assert!(
            r.mode_switches >= 1,
            "starvation must trigger fair mode: {r:?}"
        );
        // fair mode spreads the 100 tokens evenly (10 each)
        let spread: Vec<i64> = ts.tiles().iter().map(|t| t.has).collect();
        let min = spread.iter().min().unwrap();
        let max = spread.iter().max().unwrap();
        assert!(max - min <= 1, "fair mode should equalize: {spread:?}");
    }

    #[test]
    fn convergence_scales_linearly_with_n() {
        let time = |n: usize| -> f64 {
            let mut acc = 0.0;
            for seed in 0..5 {
                let mut ts = TokenSmart::new(vec![32; n], (16 * n) as u64, TsConfig::default());
                ts.init_uniform_random(&mut SimRng::seed(seed));
                let r = ts.run(&mut SimRng::seed(seed + 100));
                assert!(r.converged);
                acc += r.cycles as f64;
            }
            acc / 5.0
        };
        let t100 = time(100);
        let t400 = time(400);
        let ratio = t400 / t100;
        assert!(
            ratio > 2.5,
            "sequential ring must scale ~linearly: t100={t100}, t400={t400}"
        );
    }

    #[test]
    fn inactive_tiles_release_tokens() {
        let mut ts = TokenSmart::new(vec![0, 32, 0, 32], 0, TsConfig::default());
        // stranded tokens on inactive tiles
        ts.tiles[0].has = 20;
        ts.tiles[2].has = 12;
        let r = ts.run(&mut SimRng::seed(4));
        assert!(r.converged, "{r:?}");
        assert_eq!(ts.tiles()[0].has, 0);
        assert_eq!(ts.tiles()[2].has, 0);
        assert_eq!(ts.tiles()[1].has + ts.tiles()[3].has + ts.pool(), 32);
    }

    #[test]
    fn respects_max_cycles() {
        let cfg = TsConfig {
            err_threshold: 0.0, // unreachable
            max_cycles: 1_000,
            ..TsConfig::default()
        };
        let mut ts = TokenSmart::new(vec![32; 16], 256, cfg);
        let r = ts.run(&mut SimRng::seed(5));
        assert!(!r.converged);
        assert!(r.cycles >= 1_000);
    }

    #[test]
    fn broken_ring_halts_circulation_but_conserves() {
        let mut ts = TokenSmart::new(vec![32; 10], 320, TsConfig::default());
        let before = ts.total_tokens();
        ts.fail_tile_at(4, 12);
        let r = ts.run(&mut SimRng::seed(6));
        assert!(r.ring_broken, "{r:?}");
        assert!(!r.converged, "a broken ring cannot converge: {r:?}");
        assert_eq!(r.cycles, TsConfig::default().max_cycles);
        assert_eq!(ts.total_tokens(), before, "trapped tokens still exist");
        assert!(ts.pool() > 0, "the pool should be trapped with the corpse");
    }

    #[test]
    fn fault_plan_maps_onto_the_ring() {
        use blitzcoin_sim::{TileFault, TileFaultKind};
        let mut plan = FaultPlan::none();
        plan.tile_faults.push(TileFault {
            tile: 3,
            at_cycle: 0,
            kind: TileFaultKind::Stuck,
        });
        let mut ts = TokenSmart::new(vec![32; 8], 256, TsConfig::default());
        ts.apply_fault_plan(&plan);
        let r = ts.run(&mut SimRng::seed(7));
        assert!(r.ring_broken && !r.converged, "{r:?}");
    }

    #[test]
    fn random_init_is_reproducible() {
        let mk = || {
            let mut ts = TokenSmart::new(vec![32; 25], 400, TsConfig::default());
            ts.init_uniform_random(&mut SimRng::seed(9));
            ts.tiles().iter().map(|t| t.has).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
