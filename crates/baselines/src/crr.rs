//! Centralized Round-Robin (C-RR) controller.
//!
//! A simplified version of the centralized controller of Mantovani et al.
//! (DAC 2016), as described in Section V-C: the controller monitors tile
//! status and "uses a round-robin scheme to decide which tiles are allowed
//! to run at maximum (V, F) based on a global power cap. Tiles are
//! allocated to run alternately at maximum or minimum (V, F), and this
//! allocation is rotated periodically to guarantee fairness."
//!
//! The controller is *centralized*: it services tiles one at a time, so
//! both its response time to an activity change and each rotation step
//! scale O(N) (Equations 5.1, Fig 20).

/// The two discrete operating points C-RR assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrrLevel {
    /// Maximum (V, F).
    Max,
    /// Minimum (V, F).
    Min,
    /// Tile is inactive (idle clock floor).
    Off,
}

/// The C-RR allocation engine.
///
/// # Example
///
/// ```
/// use blitzcoin_baselines::{CrrController, CrrLevel};
///
/// // 4 active tiles at 100 mW max / 20 mW min each, 240 mW budget:
/// // 2 tiles fit at Max alongside 2 at Min (2*100 + 2*20 = 240).
/// let crr = CrrController::new(vec![100.0; 4], vec![20.0; 4], 240.0);
/// let grant = crr.allocation(&[true; 4], 0);
/// let at_max = grant.iter().filter(|&&l| l == CrrLevel::Max).count();
/// assert_eq!(at_max, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrrController {
    p_max: Vec<f64>,
    p_min: Vec<f64>,
    budget_mw: f64,
}

impl CrrController {
    /// Creates a controller for tiles with the given max/min powers under
    /// a global budget.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length or the budget is negative.
    pub fn new(p_max: Vec<f64>, p_min: Vec<f64>, budget_mw: f64) -> Self {
        assert_eq!(
            p_max.len(),
            p_min.len(),
            "per-tile power vectors must align"
        );
        assert!(budget_mw >= 0.0, "budget must be non-negative");
        assert!(
            p_max
                .iter()
                .zip(&p_min)
                .all(|(mx, mn)| mx >= mn && *mn >= 0.0),
            "max power must dominate min power"
        );
        CrrController {
            p_max,
            p_min,
            budget_mw,
        }
    }

    /// Number of tiles managed.
    pub fn len(&self) -> usize {
        self.p_max.len()
    }

    /// Whether the controller manages no tiles.
    pub fn is_empty(&self) -> bool {
        self.p_max.is_empty()
    }

    /// The global budget (mW).
    pub fn budget_mw(&self) -> f64 {
        self.budget_mw
    }

    /// The level assignment at rotation step `step`: starting from the
    /// rotation offset, active tiles are granted `Max` greedily while the
    /// cap (with every other active tile at `Min`) still holds.
    pub fn allocation(&self, active: &[bool], step: usize) -> Vec<CrrLevel> {
        assert_eq!(active.len(), self.len(), "activity vector must align");
        let mut levels = vec![CrrLevel::Off; self.len()];
        let actives: Vec<usize> = (0..self.len()).filter(|&i| active[i]).collect();
        if actives.is_empty() {
            return levels;
        }
        for &i in &actives {
            levels[i] = CrrLevel::Min;
        }
        // power with all active tiles at Min
        let mut power: f64 = actives.iter().map(|&i| self.p_min[i]).sum();
        // rotate the grant origin for fairness
        let offset = step % actives.len();
        for k in 0..actives.len() {
            let i = actives[(offset + k) % actives.len()];
            let upgrade = self.p_max[i] - self.p_min[i];
            if power + upgrade <= self.budget_mw + 1e-9 {
                levels[i] = CrrLevel::Max;
                power += upgrade;
            }
        }
        levels
    }

    /// The power drawn by a given assignment.
    pub fn power_of(&self, levels: &[CrrLevel]) -> f64 {
        levels
            .iter()
            .enumerate()
            .map(|(i, l)| match l {
                CrrLevel::Max => self.p_max[i],
                CrrLevel::Min => self.p_min[i],
                CrrLevel::Off => 0.0,
            })
            .sum()
    }

    /// Response time of the centralized service loop, in NoC cycles:
    /// the controller services each of the `n_active` tiles sequentially
    /// at `service_cycles` each (firmware work + register round trip)
    /// before the new assignment is fully applied.
    pub fn response_cycles(n_active: usize, service_cycles: u64) -> u64 {
        n_active as u64 * service_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crr4() -> CrrController {
        CrrController::new(vec![100.0; 4], vec![20.0; 4], 240.0)
    }

    #[test]
    fn respects_cap() {
        let crr = crr4();
        for step in 0..8 {
            let levels = crr.allocation(&[true; 4], step);
            assert!(crr.power_of(&levels) <= 240.0 + 1e-9, "step {step}");
        }
    }

    #[test]
    fn rotation_is_fair() {
        let crr = crr4();
        let mut max_counts = [0u32; 4];
        for step in 0..4 {
            let levels = crr.allocation(&[true; 4], step);
            for (i, l) in levels.iter().enumerate() {
                if *l == CrrLevel::Max {
                    max_counts[i] += 1;
                }
            }
        }
        // with 2 grants per step and 4 steps, every tile is granted twice
        assert_eq!(max_counts, [2, 2, 2, 2]);
    }

    #[test]
    fn inactive_tiles_are_off_and_free_headroom() {
        let crr = crr4();
        let levels = crr.allocation(&[true, false, true, false], 0);
        assert_eq!(levels[1], CrrLevel::Off);
        assert_eq!(levels[3], CrrLevel::Off);
        // 240 budget, both active upgradeable: 2*100 = 200 <= 240
        assert_eq!(levels[0], CrrLevel::Max);
        assert_eq!(levels[2], CrrLevel::Max);
    }

    #[test]
    fn heterogeneous_grant_respects_cap() {
        let crr = CrrController::new(vec![190.0, 50.0, 50.0], vec![25.0, 7.0, 7.0], 120.0);
        for step in 0..6 {
            let levels = crr.allocation(&[true; 3], step);
            assert!(crr.power_of(&levels) <= 120.0 + 1e-9);
        }
        // when the rotation favors the NVDLA-like tile, nothing else fits
        let l0 = crr.allocation(&[true; 3], 0);
        assert!(crr.power_of(&l0) > 0.0);
    }

    #[test]
    fn tiny_budget_keeps_everyone_at_min() {
        let crr = CrrController::new(vec![100.0; 3], vec![20.0; 3], 61.0);
        let levels = crr.allocation(&[true; 3], 0);
        assert!(levels.iter().all(|&l| l == CrrLevel::Min));
    }

    #[test]
    fn response_scales_with_n() {
        assert_eq!(CrrController::response_cycles(7, 1750), 12_250);
        assert_eq!(CrrController::response_cycles(0, 1750), 0);
    }

    #[test]
    fn no_active_tiles() {
        let crr = crr4();
        let levels = crr.allocation(&[false; 4], 3);
        assert!(levels.iter().all(|&l| l == CrrLevel::Off));
        assert_eq!(crr.power_of(&levels), 0.0);
    }
}
