//! # blitzcoin-baselines
//!
//! Every power-management comparator the BlitzCoin paper evaluates
//! against, implemented from the papers that introduced them:
//!
//! - [`tokensmart`]: **TokenSmart (TS)** [Shah et al., TACO 2022] — a
//!   decentralized but *sequential* token scheme: the pool of available
//!   power tokens circulates around a ring of tiles; each tile greedily
//!   takes what it needs, and a starvation watchdog switches the global
//!   policy to a fair (equal-share) mode. Convergence scales O(N)
//!   (Figs 4, 21).
//! - [`crr`]: **Centralized Round-Robin (C-RR)** [after Mantovani et al.,
//!   DAC 2016] — a central controller rotates which tiles may run at
//!   maximum (V, F) under the global cap; everyone else sits at minimum.
//!   Discrete power levels, O(N) response (Figs 16-18, 20-21).
//! - [`bcc`]: **BlitzCoin-Centralized (BC-C)** — the paper's own ablation:
//!   BlitzCoin's proportional allocation computed by a central unit that
//!   must poll/update tiles sequentially. Separates the benefit of the
//!   allocation policy from the benefit of decentralization.
//! - [`pt`]: **Price Theory (PT)** [Muthukaruppan et al., ASPLOS 2014] —
//!   hierarchical market-based allocation: an iterative price adjustment
//!   (tâtonnement) balances cluster demand against the power supply.
//! - [`static_alloc`]: **Static** — a fixed equal split of the budget,
//!   the silicon baseline of Fig 19.
//!
//! # Example
//!
//! ```
//! use blitzcoin_baselines::tokensmart::{TokenSmart, TsConfig};
//! use blitzcoin_sim::SimRng;
//!
//! // 100 tiles in a ring, each wanting 32 tokens, half the tokens available.
//! let mut ts = TokenSmart::new(vec![32; 100], 1600, TsConfig::default());
//! let result = ts.run(&mut SimRng::seed(1));
//! assert!(result.converged);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bcc;
pub mod crr;
pub mod pt;
pub mod static_alloc;
pub mod tokensmart;

pub use bcc::BccController;
pub use crr::{CrrController, CrrLevel};
pub use pt::{PriceTheory, PtMarket, PtOutcome, PtStep};
pub use static_alloc::static_allocation;
pub use tokensmart::{TokenSmart, TsConfig, TsResult};
