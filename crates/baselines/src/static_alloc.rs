//! Static power allocation: the silicon baseline of Fig 19.
//!
//! The fabricated-chip experiments compare BlitzCoin against "a baseline
//! where power is allocated statically": each tile is pinned to a fixed
//! share of the budget for the whole run, regardless of which tiles are
//! actually active. Idle tiles strand their share, which is exactly the
//! inefficiency BlitzCoin's 27% throughput improvement comes from.

/// Splits `budget_mw` equally across all `n` tiles (active or not),
/// returning each tile's fixed power share.
///
/// # Panics
/// Panics if `n == 0` or the budget is negative.
///
/// # Example
///
/// ```
/// use blitzcoin_baselines::static_allocation;
///
/// let shares = static_allocation(120.0, 6);
/// assert_eq!(shares, vec![20.0; 6]);
/// ```
pub fn static_allocation(budget_mw: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "need at least one tile");
    assert!(budget_mw >= 0.0, "budget must be non-negative");
    vec![budget_mw / n as f64; n]
}

/// Splits `budget_mw` across tiles proportionally to fixed weights
/// (a provisioned-at-design-time static allocation).
///
/// # Panics
/// Panics if the weights are empty or sum to zero.
pub fn static_weighted_allocation(budget_mw: f64, weights: &[f64]) -> Vec<f64> {
    assert!(!weights.is_empty(), "need at least one tile");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    weights.iter().map(|w| budget_mw * w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split() {
        assert_eq!(static_allocation(100.0, 4), vec![25.0; 4]);
    }

    #[test]
    fn weighted_split_conserves_budget() {
        let shares = static_weighted_allocation(120.0, &[50.0, 30.0, 190.0, 30.0, 50.0, 50.0]);
        let total: f64 = shares.iter().sum();
        assert!((total - 120.0).abs() < 1e-9);
        assert!(shares[2] > shares[0]);
    }

    #[test]
    fn static_shares_do_not_depend_on_activity() {
        // the defining (and wasteful) property: a static share exists even
        // for a tile that never runs
        let shares = static_allocation(60.0, 6);
        assert!((shares.iter().sum::<f64>() - 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_tiles_panics() {
        static_allocation(10.0, 0);
    }
}
