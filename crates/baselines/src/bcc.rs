//! BlitzCoin-Centralized (BC-C): the paper's own ablation baseline.
//!
//! BC-C "directly implements a power-allocation scheme similar to
//! BlitzCoin, but with a centralized DVFS controller... the frequency of
//! each tile is set in proportion to the ratio of the tile's target power
//! to the whole SoC's power" (Section V-C). It separates the benefit of
//! the proportional allocation policy from the benefit of the
//! decentralized hardware: allocations are identical to converged
//! BlitzCoin, but every activity change requires the central unit to be
//! notified and to sequentially push updated settings to all tiles —
//! O(N) response (Equation 5.2).

/// The BC-C central allocation engine.
///
/// # Example
///
/// ```
/// use blitzcoin_baselines::BccController;
///
/// let bcc = BccController::new(640);
/// // three active tiles with targets 8, 16, 8: pool split 160/320/160
/// let alloc = bcc.allocate(&[8, 16, 8]);
/// assert_eq!(alloc, vec![160, 320, 160]);
/// assert_eq!(alloc.iter().sum::<i64>(), 640);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BccController {
    pool: u64,
}

impl BccController {
    /// Creates a controller distributing a fixed coin pool (the power
    /// budget, in coins).
    pub fn new(pool: u64) -> Self {
        BccController { pool }
    }

    /// The managed coin pool.
    pub fn pool(&self) -> u64 {
        self.pool
    }

    /// Computes the converged BlitzCoin allocation centrally: every active
    /// tile receives `round(pool · max_i / Σmax)` coins with the rounding
    /// remainder assigned to the largest fractional shares (exactly the
    /// 4-way redistribution arithmetic, applied globally). Inactive tiles
    /// (`max = 0`) receive 0.
    pub fn allocate(&self, max: &[u64]) -> Vec<i64> {
        let weight_sum: u64 = max.iter().sum();
        if weight_sum == 0 {
            return vec![0; max.len()];
        }
        let total = self.pool as i64;
        let mut alloc: Vec<i64> = Vec::with_capacity(max.len());
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(max.len());
        for (k, &m) in max.iter().enumerate() {
            let share = total as f64 * m as f64 / weight_sum as f64;
            let base = share.floor() as i64;
            alloc.push(base);
            fracs.push((k, share - base as f64));
        }
        let mut remainder = total - alloc.iter().sum::<i64>();
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        for &(k, _) in &fracs {
            if remainder == 0 {
                break;
            }
            if max[k] > 0 {
                alloc[k] += 1;
                remainder -= 1;
            }
        }
        alloc
    }

    /// Response time of an activity change, in NoC cycles: the tile's
    /// notification reaches the controller (`notify_cycles`), the
    /// controller recomputes, then sequentially pushes one register write
    /// per active tile at `service_cycles` each (Equation 5.2's O(N)).
    pub fn response_cycles(n_active: usize, notify_cycles: u64, service_cycles: u64) -> u64 {
        notify_cycles + n_active as u64 * service_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_split_conserves_pool() {
        let bcc = BccController::new(100);
        for max in [vec![1u64, 2, 3], vec![7, 7, 7, 7], vec![0, 5, 0, 10]] {
            let alloc = bcc.allocate(&max);
            assert_eq!(alloc.iter().sum::<i64>(), 100, "max={max:?}");
        }
    }

    #[test]
    fn inactive_tiles_get_zero() {
        let bcc = BccController::new(64);
        let alloc = bcc.allocate(&[0, 32, 0, 32]);
        assert_eq!(alloc[0], 0);
        assert_eq!(alloc[2], 0);
        assert_eq!(alloc[1], 32);
        assert_eq!(alloc[3], 32);
    }

    #[test]
    fn all_inactive_allocates_nothing() {
        let bcc = BccController::new(64);
        assert_eq!(bcc.allocate(&[0, 0]), vec![0, 0]);
    }

    #[test]
    fn allocation_matches_converged_blitzcoin_targets() {
        // BC-C's whole point: same equilibrium as decentralized BlitzCoin.
        let bcc = BccController::new(320);
        let max = [8u64, 16, 8, 32];
        let alloc = bcc.allocate(&max);
        let alpha = 320.0 / 64.0;
        for (a, &m) in alloc.iter().zip(&max) {
            assert!(
                (*a as f64 - alpha * m as f64).abs() <= 1.0,
                "allocation {a} vs target {}",
                alpha * m as f64
            );
        }
    }

    #[test]
    fn response_is_linear_in_n() {
        let r7 = BccController::response_cycles(7, 10, 160);
        let r14 = BccController::response_cycles(14, 10, 160);
        assert_eq!(r7, 1130);
        assert!(r14 > 2 * r7 - 20);
    }

    #[test]
    fn remainder_goes_to_largest_fractions_deterministically() {
        let bcc = BccController::new(10);
        let a = bcc.allocate(&[3, 3, 3]);
        assert_eq!(a.iter().sum::<i64>(), 10);
        assert_eq!(a, vec![4, 3, 3]); // tie -> lowest index
    }
}
