//! Price Theory (PT): hierarchical market-based power allocation.
//!
//! Muthukaruppan et al. (ASPLOS 2014) allocate power to clusters of a
//! heterogeneous multi-core through price theory: a supervisor publishes a
//! power *price*, clusters bid demand curves, and an iterative price
//! adjustment (tâtonnement) clears the market so total demand equals the
//! supply (the power budget). The scheme is hierarchical and implemented
//! in software; its response time is dominated by the iteration count
//! times the per-level communication latency. The paper compares against
//! both the original software numbers and a hypothetical hardware
//! implementation scaled by 2.5 orders of magnitude (Section VI-D).

/// Outcome of one market-clearing run.
#[derive(Debug, Clone, PartialEq)]
pub struct PtOutcome {
    /// The cleared price (budget-normalized).
    pub price: f64,
    /// Per-cluster power grants (mW).
    pub grants: Vec<f64>,
    /// Tâtonnement iterations to clear the market.
    pub iterations: u32,
    /// Whether the market cleared within the iteration cap.
    pub cleared: bool,
}

/// A price-theory power market over clusters.
///
/// Each cluster has a *utility weight* (how much performance it gains per
/// mW, i.e. its willingness to pay) and a power range `[p_min, p_max]`.
/// At price `p`, cluster `i` demands
/// `clamp(weight_i / p, p_min_i, p_max_i)` — the classic iso-elastic
/// demand curve. The supervisor adjusts the price multiplicatively until
/// total demand matches the budget within a tolerance.
///
/// # Example
///
/// ```
/// use blitzcoin_baselines::PriceTheory;
///
/// let pt = PriceTheory::new(vec![1.0, 2.0], vec![10.0, 10.0], vec![200.0, 200.0]);
/// let out = pt.clear(300.0);
/// assert!(out.cleared);
/// // the higher-utility cluster receives more power
/// assert!(out.grants[1] > out.grants[0]);
/// let total: f64 = out.grants.iter().sum();
/// assert!((total - 300.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTheory {
    weights: Vec<f64>,
    p_min: Vec<f64>,
    p_max: Vec<f64>,
}

impl PriceTheory {
    /// Iteration cap for the tâtonnement loop.
    pub const MAX_ITERATIONS: u32 = 200;

    /// Creates a market over clusters.
    ///
    /// # Panics
    /// Panics if vector lengths disagree, any weight is non-positive, or
    /// any range is invalid.
    pub fn new(weights: Vec<f64>, p_min: Vec<f64>, p_max: Vec<f64>) -> Self {
        assert_eq!(weights.len(), p_min.len(), "market vectors must align");
        assert_eq!(weights.len(), p_max.len(), "market vectors must align");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        assert!(
            p_min
                .iter()
                .zip(&p_max)
                .all(|(lo, hi)| *lo >= 0.0 && hi >= lo),
            "power ranges must be valid"
        );
        PriceTheory {
            weights,
            p_min,
            p_max,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the market has no clusters.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Demand of cluster `i` at `price`.
    pub fn demand(&self, i: usize, price: f64) -> f64 {
        (self.weights[i] / price.max(1e-12)).clamp(self.p_min[i], self.p_max[i])
    }

    /// Clears the market for a `budget_mw` supply by multiplicative price
    /// adjustment. If the budget exceeds the total maximum demand, every
    /// cluster is granted its maximum and the market is trivially cleared.
    pub fn clear(&self, budget_mw: f64) -> PtOutcome {
        assert!(budget_mw >= 0.0, "budget must be non-negative");
        let total_max: f64 = self.p_max.iter().sum();
        let total_min: f64 = self.p_min.iter().sum();
        if budget_mw >= total_max {
            return PtOutcome {
                price: 0.0,
                grants: self.p_max.clone(),
                iterations: 0,
                cleared: true,
            };
        }
        if budget_mw <= total_min {
            return PtOutcome {
                price: f64::INFINITY,
                grants: self.p_min.clone(),
                iterations: 0,
                cleared: true,
            };
        }
        let mut price = self.weights.iter().sum::<f64>() / budget_mw;
        let tol = (budget_mw * 1e-3).max(1e-6);
        for it in 1..=Self::MAX_ITERATIONS {
            let demand: f64 = (0..self.len()).map(|i| self.demand(i, price)).sum();
            if (demand - budget_mw).abs() <= tol {
                return PtOutcome {
                    price,
                    grants: (0..self.len()).map(|i| self.demand(i, price)).collect(),
                    iterations: it,
                    cleared: true,
                };
            }
            // multiplicative tâtonnement: raise price on excess demand
            price *= (demand / budget_mw).powf(0.8);
        }
        PtOutcome {
            price,
            grants: (0..self.len()).map(|i| self.demand(i, price)).collect(),
            iterations: Self::MAX_ITERATIONS,
            cleared: false,
        }
    }

    /// Response-time model, in nanoseconds: `iterations` supervisor rounds
    /// at `round_ns` each (the per-round latency bundles the hierarchical
    /// bid/publish messaging and the demand recomputation).
    pub fn response_ns(iterations: u32, round_ns: f64) -> f64 {
        iterations as f64 * round_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> PriceTheory {
        PriceTheory::new(
            vec![1.0, 2.0, 4.0],
            vec![5.0, 5.0, 5.0],
            vec![100.0, 100.0, 100.0],
        )
    }

    #[test]
    fn clears_to_budget() {
        let out = market().clear(150.0);
        assert!(out.cleared);
        let total: f64 = out.grants.iter().sum();
        assert!((total - 150.0).abs() <= 0.2, "total={total}");
    }

    #[test]
    fn grants_follow_utility() {
        let out = market().clear(150.0);
        assert!(out.grants[0] < out.grants[1]);
        assert!(out.grants[1] < out.grants[2]);
    }

    #[test]
    fn abundant_budget_grants_maximum() {
        let out = market().clear(1000.0);
        assert!(out.cleared);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.grants, vec![100.0, 100.0, 100.0]);
    }

    #[test]
    fn scarce_budget_grants_minimum() {
        let out = market().clear(10.0);
        assert!(out.cleared);
        assert_eq!(out.grants, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn grants_respect_ranges() {
        for budget in [20.0, 50.0, 120.0, 250.0] {
            let out = market().clear(budget);
            for (i, g) in out.grants.iter().enumerate() {
                assert!(*g >= 5.0 - 1e-9 && *g <= 100.0 + 1e-9, "cluster {i}: {g}");
            }
        }
    }

    #[test]
    fn iterations_drive_response_time() {
        let out = market().clear(150.0);
        assert!(out.iterations >= 1);
        let ns = PriceTheory::response_ns(out.iterations, 1000.0);
        assert!(ns >= 1000.0);
    }

    #[test]
    fn many_cluster_market_scales() {
        let n = 256;
        let pt = PriceTheory::new(
            (1..=n).map(|i| i as f64).collect(),
            vec![1.0; n],
            vec![50.0; n],
        );
        let out = pt.clear(2000.0);
        assert!(out.cleared, "{out:?}");
        let total: f64 = out.grants.iter().sum();
        assert!((total - 2000.0).abs() <= 2.0);
    }
}
