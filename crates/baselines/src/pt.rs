//! Price Theory (PT): hierarchical market-based power allocation.
//!
//! Muthukaruppan et al. (ASPLOS 2014) allocate power to clusters of a
//! heterogeneous multi-core through price theory: a supervisor publishes a
//! power *price*, clusters bid demand curves, and an iterative price
//! adjustment (tâtonnement) clears the market so total demand equals the
//! supply (the power budget). The scheme is hierarchical and implemented
//! in software; its response time is dominated by the iteration count
//! times the per-level communication latency. The paper compares against
//! both the original software numbers and a hypothetical hardware
//! implementation scaled by 2.5 orders of magnitude (Section VI-D).
//!
//! Two entry points share one numeric core:
//!
//! - [`PriceTheory::clear`] runs the whole market to completion in one
//!   call — the behavioural model the analytic figures use.
//! - [`PriceTheory::market`] returns a [`PtMarket`], an explicit state
//!   machine that *yields* the protocol messages (price broadcasts out,
//!   demand bids back, a final grant) instead of looping internally.
//!   The cycle-level engine drives one of these per PM cluster, turning
//!   every yielded message into real NoC traffic with per-hop timing —
//!   the same pattern the TokenSmart port established.
//!
//! Degenerate budgets are detected up front: a supply at or above the
//! total maximum demand (or at or below the total minimum) cannot be
//! priced, so the market immediately grants the clamp vector instead of
//! burning the iteration cap. For feasible budgets the multiplicative
//! tâtonnement is followed, if it fails to converge within
//! [`PriceTheory::MAX_ITERATIONS`], by a deterministic price bisection —
//! total demand is continuous and monotone in the price, so a feasible
//! market always clears.

/// Outcome of one market-clearing run.
#[derive(Debug, Clone, PartialEq)]
pub struct PtOutcome {
    /// The cleared price (budget-normalized).
    pub price: f64,
    /// Per-cluster power grants (mW).
    pub grants: Vec<f64>,
    /// Tâtonnement iterations to clear the market.
    pub iterations: u32,
    /// Whether the market cleared within the iteration cap.
    pub cleared: bool,
}

/// One message step yielded by a [`PtMarket`].
///
/// `Quote` asks the driver to broadcast the price and collect one demand
/// bid per bidder (via [`PtMarket::submit_bid`]); `Grant` is the final
/// allocation and ends the session.
#[derive(Debug, Clone, PartialEq)]
pub enum PtStep {
    /// Broadcast `price` to every bidder and collect their demand bids.
    Quote {
        /// The price to quote this round.
        price: f64,
    },
    /// The market is done: apply the per-bidder grants.
    Grant {
        /// The final price.
        price: f64,
        /// Per-bidder grants (same order as the market vectors).
        grants: Vec<f64>,
        /// Whether total demand matched the budget within tolerance.
        cleared: bool,
    },
}

/// The market-clearing state machine: one tâtonnement session, stepped
/// from outside.
///
/// Protocol shape (the driver owns all messaging):
///
/// 1. [`PtMarket::begin`] yields the first [`PtStep::Quote`] — or an
///    immediate [`PtStep::Grant`] for a degenerate budget.
/// 2. For each quote, the driver obtains every bidder's demand at the
///    quoted price (in the engine: a price broadcast out and a bid
///    packet back per member) and records it with
///    [`PtMarket::submit_bid`].
/// 3. Once [`PtMarket::bids_complete`], [`PtMarket::step`] consumes the
///    round: it either converges to a [`PtStep::Grant`] or yields the
///    next [`PtStep::Quote`] at an adjusted price.
///
/// The price sequence is deterministic and independent of the
/// tolerance, so the iteration count at which the session first lands
/// inside the tolerance is monotone (non-increasing) in the tolerance.
#[derive(Debug, Clone)]
pub struct PtMarket {
    weights: Vec<f64>,
    p_min: Vec<f64>,
    p_max: Vec<f64>,
    budget: f64,
    tol: f64,
    price: f64,
    iterations: u32,
    bids: Vec<Option<f64>>,
    in_round: bool,
    done: bool,
    /// Bisection bracket: a price known to under-price the market
    /// (demand above budget) …
    lo: Option<f64>,
    /// … and one known to over-price it (demand below budget).
    hi: Option<f64>,
}

impl PtMarket {
    /// Creates a session over aligned bidder vectors for `budget`
    /// supply, with the analytic initial price `Σweights / budget` and
    /// the default tolerance.
    ///
    /// # Panics
    /// Panics on misaligned vectors, non-positive weights, invalid
    /// ranges, or a negative budget (same contract as
    /// [`PriceTheory::new`]).
    pub fn new(weights: Vec<f64>, p_min: Vec<f64>, p_max: Vec<f64>, budget: f64) -> Self {
        assert!(budget >= 0.0, "budget must be non-negative");
        let pt = PriceTheory::new(weights, p_min, p_max);
        let price = pt.weights.iter().sum::<f64>() / budget.max(1e-12);
        let n = pt.weights.len();
        PtMarket {
            weights: pt.weights,
            p_min: pt.p_min,
            p_max: pt.p_max,
            budget,
            tol: PriceTheory::default_tolerance(budget),
            price,
            iterations: 0,
            bids: vec![None; n],
            in_round: false,
            done: false,
            lo: None,
            hi: None,
        }
    }

    /// Overrides the initial quoted price (e.g. a warm start from the
    /// previous session's cleared price, or a cold `1.0` when the
    /// supervisor does not know the aggregate utility up front).
    ///
    /// # Panics
    /// Panics unless `price` is finite and positive, or if the session
    /// has already begun.
    #[must_use]
    pub fn with_initial_price(mut self, price: f64) -> Self {
        assert!(
            price.is_finite() && price > 0.0,
            "initial price must be positive"
        );
        assert!(!self.in_round && self.iterations == 0, "session started");
        self.price = price;
        self
    }

    /// Overrides the convergence tolerance.
    ///
    /// # Panics
    /// Panics unless `tol` is finite and positive.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol.is_finite() && tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Number of bidders.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the market has no bidders.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The budget (supply) this session clears against.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The currently quoted price.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// Tâtonnement iterations consumed so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Whether the session has yielded its [`PtStep::Grant`].
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Demand of bidder `i` at `price` — what the bidder itself computes
    /// when a quote reaches it.
    pub fn demand(&self, i: usize, price: f64) -> f64 {
        (self.weights[i] / price.max(1e-12)).clamp(self.p_min[i], self.p_max[i])
    }

    /// Starts the session: an immediate [`PtStep::Grant`] of the clamp
    /// vector for a degenerate budget, otherwise the first quote.
    ///
    /// # Panics
    /// Panics if the session already began.
    pub fn begin(&mut self) -> PtStep {
        assert!(
            !self.in_round && !self.done && self.iterations == 0,
            "session started"
        );
        let total_max: f64 = self.p_max.iter().sum();
        let total_min: f64 = self.p_min.iter().sum();
        if self.budget >= total_max {
            self.done = true;
            self.price = 0.0;
            return PtStep::Grant {
                price: 0.0,
                grants: self.p_max.clone(),
                cleared: true,
            };
        }
        if self.budget <= total_min {
            self.done = true;
            self.price = f64::INFINITY;
            return PtStep::Grant {
                price: f64::INFINITY,
                grants: self.p_min.clone(),
                cleared: true,
            };
        }
        self.in_round = true;
        PtStep::Quote { price: self.price }
    }

    /// Records bidder `i`'s demand bid for the current quote.
    ///
    /// # Panics
    /// Panics outside a quote round or for an out-of-range bidder.
    pub fn submit_bid(&mut self, i: usize, demand: f64) {
        assert!(self.in_round, "no quote outstanding");
        self.bids[i] = Some(demand);
    }

    /// Whether every bidder's bid for the current quote is in.
    pub fn bids_complete(&self) -> bool {
        self.in_round && self.bids.iter().all(Option::is_some)
    }

    /// Consumes a complete round of bids: converges to a
    /// [`PtStep::Grant`], or yields the next [`PtStep::Quote`]. The
    /// price follows the multiplicative tâtonnement for the first
    /// [`PriceTheory::MAX_ITERATIONS`] rounds and a deterministic
    /// bisection of the bracketing prices after that.
    ///
    /// # Panics
    /// Panics unless [`PtMarket::bids_complete`].
    pub fn step(&mut self) -> PtStep {
        assert!(self.bids_complete(), "round is missing bids");
        let demand: f64 = self.bids.iter().map(|b| b.expect("complete")).sum();
        self.iterations += 1;
        if (demand - self.budget).abs() <= self.tol {
            self.done = true;
            self.in_round = false;
            let grants: Vec<f64> = self.bids.iter().map(|b| b.expect("complete")).collect();
            return PtStep::Grant {
                price: self.price,
                grants,
                cleared: true,
            };
        }
        if demand > self.budget {
            self.lo = Some(self.price);
        } else {
            self.hi = Some(self.price);
        }
        if self.iterations >= PriceTheory::MAX_ITERATIONS + Self::BISECT_ITERATIONS {
            self.done = true;
            self.in_round = false;
            let grants: Vec<f64> = self.bids.iter().map(|b| b.expect("complete")).collect();
            return PtStep::Grant {
                price: self.price,
                grants,
                cleared: false,
            };
        }
        if self.iterations < PriceTheory::MAX_ITERATIONS {
            // multiplicative tâtonnement: raise price on excess demand
            self.price *= (demand / self.budget).powf(0.8);
        } else {
            // fallback: bisect the bracket (total demand is monotone
            // non-increasing in price, so a feasible budget is always
            // bracketed eventually)
            self.price = match (self.lo, self.hi) {
                (Some(lo), Some(hi)) => (lo * hi).sqrt(),
                (Some(lo), None) => lo * 2.0,
                (None, Some(hi)) => hi / 2.0,
                (None, None) => unreachable!("every round brackets one side"),
            };
        }
        self.bids.fill(None);
        PtStep::Quote { price: self.price }
    }

    /// Extra bisection rounds granted after the tâtonnement cap.
    const BISECT_ITERATIONS: u32 = 100;
}

/// A price-theory power market over clusters.
///
/// Each cluster has a *utility weight* (how much performance it gains per
/// mW, i.e. its willingness to pay) and a power range `[p_min, p_max]`.
/// At price `p`, cluster `i` demands
/// `clamp(weight_i / p, p_min_i, p_max_i)` — the classic iso-elastic
/// demand curve. The supervisor adjusts the price multiplicatively until
/// total demand matches the budget within a tolerance.
///
/// # Example
///
/// ```
/// use blitzcoin_baselines::PriceTheory;
///
/// let pt = PriceTheory::new(vec![1.0, 2.0], vec![10.0, 10.0], vec![200.0, 200.0]);
/// let out = pt.clear(300.0);
/// assert!(out.cleared);
/// // the higher-utility cluster receives more power
/// assert!(out.grants[1] > out.grants[0]);
/// let total: f64 = out.grants.iter().sum();
/// assert!((total - 300.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTheory {
    weights: Vec<f64>,
    p_min: Vec<f64>,
    p_max: Vec<f64>,
}

impl PriceTheory {
    /// Iteration cap for the tâtonnement loop.
    pub const MAX_ITERATIONS: u32 = 200;

    /// Creates a market over clusters.
    ///
    /// # Panics
    /// Panics if vector lengths disagree, any weight is non-positive, or
    /// any range is invalid.
    pub fn new(weights: Vec<f64>, p_min: Vec<f64>, p_max: Vec<f64>) -> Self {
        assert_eq!(weights.len(), p_min.len(), "market vectors must align");
        assert_eq!(weights.len(), p_max.len(), "market vectors must align");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        assert!(
            p_min
                .iter()
                .zip(&p_max)
                .all(|(lo, hi)| *lo >= 0.0 && hi >= lo),
            "power ranges must be valid"
        );
        PriceTheory {
            weights,
            p_min,
            p_max,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the market has no clusters.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Demand of cluster `i` at `price`.
    pub fn demand(&self, i: usize, price: f64) -> f64 {
        (self.weights[i] / price.max(1e-12)).clamp(self.p_min[i], self.p_max[i])
    }

    /// The default convergence tolerance for a `budget_mw` market.
    pub fn default_tolerance(budget_mw: f64) -> f64 {
        (budget_mw * 1e-3).max(1e-6)
    }

    /// Starts a stepping session (see [`PtMarket`]) over this market for
    /// a `budget_mw` supply.
    ///
    /// # Panics
    /// Panics if `budget_mw` is negative.
    pub fn market(&self, budget_mw: f64) -> PtMarket {
        PtMarket::new(
            self.weights.clone(),
            self.p_min.clone(),
            self.p_max.clone(),
            budget_mw,
        )
    }

    /// Clears the market for a `budget_mw` supply at the default
    /// tolerance. Degenerate budgets (at/above total maximum demand, or
    /// at/below total minimum) return the clamp vector immediately.
    ///
    /// # Panics
    /// Panics if `budget_mw` is negative.
    pub fn clear(&self, budget_mw: f64) -> PtOutcome {
        self.clear_with_tolerance(budget_mw, Self::default_tolerance(budget_mw))
    }

    /// [`PriceTheory::clear`] at an explicit tolerance. The price
    /// sequence is tolerance-independent, so the iteration count is
    /// monotone non-increasing in `tol`.
    ///
    /// # Panics
    /// Panics if `budget_mw` is negative or `tol` non-positive.
    pub fn clear_with_tolerance(&self, budget_mw: f64, tol: f64) -> PtOutcome {
        let mut market = self.market(budget_mw).with_tolerance(tol);
        let mut step = market.begin();
        loop {
            match step {
                PtStep::Quote { price } => {
                    for i in 0..self.len() {
                        let bid = self.demand(i, price);
                        market.submit_bid(i, bid);
                    }
                    step = market.step();
                }
                PtStep::Grant {
                    price,
                    grants,
                    cleared,
                } => {
                    return PtOutcome {
                        price,
                        grants,
                        iterations: market.iterations(),
                        cleared,
                    };
                }
            }
        }
    }

    /// Response-time model, in nanoseconds: `iterations` supervisor rounds
    /// at `round_ns` each (the per-round latency bundles the hierarchical
    /// bid/publish messaging and the demand recomputation).
    pub fn response_ns(iterations: u32, round_ns: f64) -> f64 {
        iterations as f64 * round_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blitzcoin_sim::check::forall;
    use blitzcoin_sim::{ensure, SimRng};

    fn market() -> PriceTheory {
        PriceTheory::new(
            vec![1.0, 2.0, 4.0],
            vec![5.0, 5.0, 5.0],
            vec![100.0, 100.0, 100.0],
        )
    }

    /// A random, always-valid market with up to 12 bidders.
    fn any_market(rng: &mut SimRng) -> PriceTheory {
        let n = rng.range_usize(1..13);
        let weights: Vec<f64> = (0..n).map(|_| 0.1 + rng.unit_f64() * 10.0).collect();
        let p_min: Vec<f64> = (0..n).map(|_| rng.unit_f64() * 5.0).collect();
        let p_max: Vec<f64> = p_min
            .iter()
            .map(|&lo| lo + 0.1 + rng.unit_f64() * 100.0)
            .collect();
        PriceTheory::new(weights, p_min, p_max)
    }

    #[test]
    fn clears_to_budget() {
        let out = market().clear(150.0);
        assert!(out.cleared);
        let total: f64 = out.grants.iter().sum();
        assert!((total - 150.0).abs() <= 0.2, "total={total}");
    }

    #[test]
    fn grants_follow_utility() {
        let out = market().clear(150.0);
        assert!(out.grants[0] < out.grants[1]);
        assert!(out.grants[1] < out.grants[2]);
    }

    #[test]
    fn abundant_budget_grants_maximum() {
        let out = market().clear(1000.0);
        assert!(out.cleared);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.grants, vec![100.0, 100.0, 100.0]);
    }

    #[test]
    fn scarce_budget_grants_minimum() {
        let out = market().clear(10.0);
        assert!(out.cleared);
        assert_eq!(out.grants, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn grants_respect_ranges() {
        for budget in [20.0, 50.0, 120.0, 250.0] {
            let out = market().clear(budget);
            for (i, g) in out.grants.iter().enumerate() {
                assert!(*g >= 5.0 - 1e-9 && *g <= 100.0 + 1e-9, "cluster {i}: {g}");
            }
        }
    }

    #[test]
    fn iterations_drive_response_time() {
        let out = market().clear(150.0);
        assert!(out.iterations >= 1);
        let ns = PriceTheory::response_ns(out.iterations, 1000.0);
        assert!(ns >= 1000.0);
    }

    #[test]
    fn many_cluster_market_scales() {
        let n = 256;
        let pt = PriceTheory::new(
            (1..=n).map(|i| i as f64).collect(),
            vec![1.0; n],
            vec![50.0; n],
        );
        let out = pt.clear(2000.0);
        assert!(out.cleared, "{out:?}");
        let total: f64 = out.grants.iter().sum();
        assert!((total - 2000.0).abs() <= 2.0);
    }

    #[test]
    fn stepping_machine_reproduces_clear_exactly() {
        // `clear` is implemented over the machine, but pin the message
        // protocol too: driving a separate session by hand, one quote
        // and one bid at a time, must land on the identical outcome.
        for budget in [10.0, 20.0, 150.0, 250.0, 1000.0] {
            let pt = market();
            let out = pt.clear(budget);
            let mut session = pt.market(budget);
            let mut step = session.begin();
            let mut rounds = 0u32;
            let hand = loop {
                match step {
                    PtStep::Quote { price } => {
                        rounds += 1;
                        assert!(!session.bids_complete());
                        for i in 0..pt.len() {
                            session.submit_bid(i, session.demand(i, price));
                        }
                        step = session.step();
                    }
                    PtStep::Grant {
                        price,
                        grants,
                        cleared,
                    } => break (price, grants, cleared),
                }
            };
            assert_eq!(hand, (out.price, out.grants, out.cleared), "at {budget}");
            assert_eq!(session.iterations(), out.iterations);
            assert_eq!(rounds, out.iterations);
            assert!(session.is_done());
        }
    }

    #[test]
    fn warm_started_market_still_clears() {
        let pt = market();
        let cold = pt.clear(150.0);
        let mut session = pt.market(150.0).with_initial_price(1.0);
        let mut step = session.begin();
        let grants = loop {
            match step {
                PtStep::Quote { price } => {
                    for i in 0..pt.len() {
                        session.submit_bid(i, session.demand(i, price));
                    }
                    step = session.step();
                }
                PtStep::Grant {
                    grants, cleared, ..
                } => {
                    assert!(cleared);
                    break grants;
                }
            }
        };
        // a different starting price converges to the same equilibrium
        for (a, b) in grants.iter().zip(&cold.grants) {
            assert!((a - b).abs() < 1.0, "{a} vs {b}");
        }
    }

    #[test]
    fn forall_grants_stay_within_ranges() {
        forall("pt grants within [p_min, p_max]", 64, |rng| {
            let pt = any_market(rng);
            let total_max: f64 = (0..pt.len()).map(|i| pt.p_max[i]).sum();
            let budget = rng.unit_f64() * total_max * 1.2;
            let out = pt.clear(budget);
            for (i, g) in out.grants.iter().enumerate() {
                ensure!(
                    *g >= pt.p_min[i] - 1e-9 && *g <= pt.p_max[i] + 1e-9,
                    "bidder {i}: grant {g} outside [{}, {}] at budget {budget}",
                    pt.p_min[i],
                    pt.p_max[i]
                );
            }
            Ok(())
        });
    }

    #[test]
    fn forall_feasible_budgets_clear_within_tolerance() {
        forall("pt cleared implies sum within tol", 64, |rng| {
            let pt = any_market(rng);
            let total_min: f64 = (0..pt.len()).map(|i| pt.p_min[i]).sum();
            let total_max: f64 = (0..pt.len()).map(|i| pt.p_max[i]).sum();
            // strictly feasible: supply between the clamp totals
            let budget = total_min + (0.01 + rng.unit_f64() * 0.98) * (total_max - total_min);
            let out = pt.clear(budget);
            ensure!(
                out.cleared,
                "feasible budget {budget} failed to clear: {out:?}"
            );
            let total: f64 = out.grants.iter().sum();
            let tol = PriceTheory::default_tolerance(budget);
            ensure!(
                (total - budget).abs() <= tol + 1e-12,
                "cleared but Σgrants {total} misses budget {budget} beyond tol {tol}"
            );
            Ok(())
        });
    }

    #[test]
    fn forall_degenerate_budgets_grant_clamps_immediately() {
        forall("pt degenerate budgets clamp up front", 48, |rng| {
            let pt = any_market(rng);
            let total_min: f64 = (0..pt.len()).map(|i| pt.p_min[i]).sum();
            let total_max: f64 = (0..pt.len()).map(|i| pt.p_max[i]).sum();
            let scarce = pt.clear(total_min * rng.unit_f64());
            ensure!(
                scarce.iterations == 0 && scarce.cleared,
                "scarce budget must short-circuit: {scarce:?}"
            );
            ensure!(scarce.grants == pt.p_min, "scarce grants must clamp low");
            let abundant = pt.clear(total_max * (1.0 + rng.unit_f64()));
            ensure!(
                abundant.iterations == 0 && abundant.cleared,
                "abundant budget must short-circuit: {abundant:?}"
            );
            ensure!(
                abundant.grants == pt.p_max,
                "abundant grants must clamp high"
            );
            Ok(())
        });
    }

    #[test]
    fn forall_iterations_monotone_in_tolerance() {
        forall("pt iterations monotone in tol", 48, |rng| {
            let pt = any_market(rng);
            let total_min: f64 = (0..pt.len()).map(|i| pt.p_min[i]).sum();
            let total_max: f64 = (0..pt.len()).map(|i| pt.p_max[i]).sum();
            let budget = total_min + (0.01 + rng.unit_f64() * 0.98) * (total_max - total_min);
            // loosening the tolerance can only stop the (fixed) price
            // sequence earlier, never later
            let mut last = 0u32;
            for tol in [budget * 0.1, budget * 1e-2, budget * 1e-3, budget * 1e-5] {
                let out = pt.clear_with_tolerance(budget, tol.max(1e-9));
                ensure!(
                    out.iterations >= last,
                    "iterations dropped from {last} to {} as tol tightened to {tol}",
                    out.iterations
                );
                last = out.iterations;
            }
            Ok(())
        });
    }
}
