//! Coin-to-frequency lookup table.
//!
//! Step (2) of the BlitzCoin power-management pipeline (Section IV-A): "a
//! lookup table converts the coin count into a target frequency for the
//! tile, based on a pre-characterization of the power profile of each
//! tile". The coin counter is 6 bits, yielding 64 power levels per tile —
//! much finer than the 2-5 levels of prior designs.

use crate::model::PowerModel;

/// A per-tile lookup table mapping coin counts to frequency targets.
///
/// Entry `k` holds the highest frequency whose power fits in `k` coins
/// (at `coin_value_mw` milliwatts per coin). Coin counts at or below the
/// tile's idle threshold map to 0 MHz, meaning "clock scaled to the idle
/// floor" (the tile then draws [`PowerModel::idle_power`]).
///
/// # Example
///
/// ```
/// use blitzcoin_power::{AcceleratorClass, CoinLut, PowerModel};
///
/// let model = PowerModel::of(AcceleratorClass::Fft);
/// let lut = CoinLut::build(&model, 2.0, 64); // 2 mW per coin
/// // 25 coins = 50 mW = the FFT's P_max -> F_max
/// assert_eq!(lut.f_target(25), model.f_max());
/// // 0 coins -> idle
/// assert_eq!(lut.f_target(0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoinLut {
    entries: Vec<f64>,
    coin_value_mw: f64,
}

impl CoinLut {
    /// Builds the LUT for `model` with `levels` entries above zero
    /// (entry 0 is always the idle level). The 6-bit hardware uses
    /// `levels = 64`.
    ///
    /// # Panics
    /// Panics if `coin_value_mw <= 0` or `levels == 0`.
    pub fn build(model: &PowerModel, coin_value_mw: f64, levels: u32) -> Self {
        assert!(coin_value_mw > 0.0, "coin value must be positive");
        assert!(levels > 0, "LUT needs at least one level");
        let mut entries = Vec::with_capacity(levels as usize + 1);
        for k in 0..=levels {
            let budget = k as f64 * coin_value_mw;
            if budget < model.power_floor() {
                // Not enough coins to run even at the deepest clock-scaled
                // point (V_min, F_min/8): the tile idles.
                entries.push(0.0);
            } else {
                entries.push(model.freq_for_power(budget));
            }
        }
        CoinLut {
            entries,
            coin_value_mw,
        }
    }

    /// The frequency target (MHz) for `coins`. Counts above the table's
    /// top level clamp to the last entry; negative transient counts (the
    /// sign-bit case of Section IV-A) map to the idle level.
    pub fn f_target(&self, coins: i32) -> f64 {
        if coins <= 0 {
            return self.entries[0];
        }
        let idx = (coins as usize).min(self.entries.len() - 1);
        self.entries[idx]
    }

    /// Milliwatts represented by one coin.
    pub fn coin_value_mw(&self) -> f64 {
        self.coin_value_mw
    }

    /// Number of non-idle levels.
    pub fn levels(&self) -> u32 {
        (self.entries.len() - 1) as u32
    }

    /// The smallest coin count whose entry is non-idle (runs the tile at
    /// F_min or above), or `None` if no entry is non-idle.
    pub fn min_active_coins(&self) -> Option<u32> {
        self.entries.iter().position(|&f| f > 0.0).map(|i| i as u32)
    }

    /// The smallest coin count mapping to the tile's F_max (saturation
    /// point), or `None` if the table never reaches it.
    pub fn saturation_coins(&self) -> Option<u32> {
        let top = *self.entries.last().expect("non-empty");
        if top == 0.0 {
            return None;
        }
        self.entries
            .iter()
            .position(|&f| (f - top).abs() < 1e-9)
            .map(|i| i as u32)
    }

    /// All entries (index = coin count).
    pub fn entries(&self) -> &[f64] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AcceleratorClass;

    fn lut() -> (PowerModel, CoinLut) {
        let m = PowerModel::of(AcceleratorClass::Nvdla);
        let l = CoinLut::build(&m, 5.0, 64);
        (m, l)
    }

    #[test]
    fn monotone_in_coins() {
        let (_, l) = lut();
        for k in 0..64 {
            assert!(l.f_target(k + 1) >= l.f_target(k), "at {k}");
        }
    }

    #[test]
    fn idle_below_floor_and_extension_between() {
        let (m, l) = lut();
        // NVDLA power floor ~ 3.8 mW; at 5 mW/coin a single coin already
        // runs the tile (deep clock scaling at V_min)...
        assert!(l.f_target(1) > 0.0);
        assert!(l.f_target(1) < m.f_min(), "1 coin lands in the extension");
        assert_eq!(l.f_target(0), 0.0);
        assert_eq!(l.min_active_coins(), Some(1));
        // ...and 6 coins (30 mW > p_min 26 mW) run above F_min.
        assert!(l.f_target(6) >= m.f_min());
    }

    #[test]
    fn negative_transient_counts_idle() {
        let (_, l) = lut();
        assert_eq!(l.f_target(-3), 0.0);
    }

    #[test]
    fn saturates_at_pmax() {
        let (m, l) = lut();
        // NVDLA p_max = 190 mW = 38 coins at 5 mW/coin.
        assert_eq!(l.saturation_coins(), Some(38));
        assert_eq!(l.f_target(38), m.f_max());
        assert_eq!(l.f_target(64), m.f_max());
        assert_eq!(l.f_target(1000), m.f_max());
    }

    #[test]
    fn entry_power_fits_budget() {
        let (m, l) = lut();
        for k in 0..=64 {
            let f = l.f_target(k);
            if f > 0.0 {
                assert!(
                    m.power_at(f) <= k as f64 * 5.0 + 1e-6,
                    "coin {k}: {f} MHz draws {} mW",
                    m.power_at(f)
                );
            }
        }
    }

    #[test]
    fn levels_and_value() {
        let (_, l) = lut();
        assert_eq!(l.levels(), 64);
        assert_eq!(l.coin_value_mw(), 5.0);
        assert_eq!(l.entries().len(), 65);
    }

    #[test]
    fn all_idle_table() {
        let m = PowerModel::of(AcceleratorClass::Nvdla);
        let l = CoinLut::build(&m, 0.1, 8); // 0.8 mW max: below the floor
        assert_eq!(l.min_active_coins(), None);
        assert_eq!(l.saturation_coins(), None);
    }
}
