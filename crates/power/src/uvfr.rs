//! The assembled Unified Voltage and Frequency Regulator.
//!
//! Conventional per-tile DVFS uses two control loops (a voltage regulator
//! against a voltage reference, and a PLL against a frequency reference).
//! UVFR collapses them into one (Fig 9): the LDO controller compares the
//! *frequency target* against the TDC readout of the ring oscillator and
//! adjusts the LDO code; the tile clock is the oscillator itself, so the
//! tile always runs at (approximately) the maximum frequency its current
//! voltage supports — no transient-IR guardbands, no canary flip-flops.

use crate::curve::VfCurve;
use crate::ldo::{Ldo, PidGains};
use crate::oscillator::RingOscillator;
use crate::tdc::Tdc;

/// UVFR configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UvfrConfig {
    /// LDO code resolution (max code; 255 = 8-bit).
    pub ldo_max_code: u32,
    /// PID gains for the LDO controller.
    pub gains: PidGains,
    /// TDC measurement window in NoC cycles; also the control period.
    pub tdc_window: u32,
    /// Ring oscillator tracking margin.
    pub ro_margin: f64,
}

impl Default for UvfrConfig {
    fn default() -> Self {
        UvfrConfig {
            ldo_max_code: 255,
            gains: PidGains::default(),
            tdc_window: 64,
            ro_margin: 1.0,
        }
    }
}

/// A per-tile UVFR instance.
///
/// Call [`Uvfr::set_target`] with the frequency the coin LUT selected,
/// then [`Uvfr::step`] once per control period (one TDC window); the tile
/// clock between steps is [`Uvfr::frequency`].
///
/// # Example
///
/// ```
/// use blitzcoin_power::{Uvfr, UvfrConfig, VfCurve};
///
/// let curve = VfCurve::linear(0.5, 1.0, 200.0, 800.0);
/// let mut uvfr = Uvfr::new(curve, UvfrConfig::default());
/// uvfr.set_target(500.0);
/// for _ in 0..100 { uvfr.step(); }
/// assert!((uvfr.frequency() - 500.0).abs() < 2.0 * uvfr.tdc().resolution_mhz());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Uvfr {
    ldo: Ldo,
    ro: RingOscillator,
    tdc: Tdc,
    target_mhz: f64,
    steps: u64,
}

impl Uvfr {
    /// Builds a UVFR over a tile's V-F characterization curve.
    pub fn new(curve: VfCurve, config: UvfrConfig) -> Self {
        let ldo = Ldo::new(
            curve.v_min(),
            curve.v_max(),
            config.ldo_max_code,
            config.gains,
        );
        let ro = RingOscillator::new(curve, config.ro_margin);
        Uvfr {
            ldo,
            ro,
            tdc: Tdc::new(config.tdc_window),
            target_mhz: 0.0,
            steps: 0,
        }
    }

    /// Sets the frequency target (MHz), e.g. from the coin LUT. The target
    /// is clamped to the oscillator's achievable range at step time.
    pub fn set_target(&mut self, f_mhz: f64) {
        assert!(f_mhz >= 0.0, "frequency target must be non-negative");
        self.target_mhz = f_mhz;
    }

    /// The current frequency target (MHz).
    pub fn target(&self) -> f64 {
        self.target_mhz
    }

    /// The instantaneous tile clock frequency (MHz): the oscillator output
    /// at the present LDO voltage.
    pub fn frequency(&self) -> f64 {
        self.ro.freq_at(self.ldo.voltage())
    }

    /// The present tile voltage.
    pub fn voltage(&self) -> f64 {
        self.ldo.voltage()
    }

    /// One control period: TDC measures the oscillator, the PID compares
    /// against the target code and steps the LDO. Returns the new tile
    /// frequency.
    pub fn step(&mut self) -> f64 {
        let clamped = self.target_mhz.clamp(self.ro.f_min(), self.ro.f_max());
        let target_code = self.tdc.code_for(clamped);
        let measured_code = self.tdc.code_for(self.frequency());
        let error = target_code as f64 - measured_code as f64;
        self.ldo.pid_update(error);
        self.steps += 1;
        self.frequency()
    }

    /// Runs control periods until the measured frequency is within
    /// `tol_counts` TDC counts of the target, or `max_steps` elapse.
    /// Returns the number of steps taken (i.e. settle time in TDC
    /// windows), or `None` if it did not settle.
    pub fn settle(&mut self, tol_counts: u32, max_steps: u32) -> Option<u32> {
        let clamped = self.target_mhz.clamp(self.ro.f_min(), self.ro.f_max());
        let target_code = self.tdc.code_for(clamped);
        for i in 0..max_steps {
            let measured = self.tdc.code_for(self.frequency());
            if measured.abs_diff(target_code) <= tol_counts {
                return Some(i);
            }
            self.step();
        }
        None
    }

    /// Total control steps performed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The TDC instance (for resolution queries).
    pub fn tdc(&self) -> &Tdc {
        &self.tdc
    }

    /// The LDO instance.
    pub fn ldo(&self) -> &Ldo {
        &self.ldo
    }

    /// The ring oscillator.
    pub fn oscillator(&self) -> &RingOscillator {
        &self.ro
    }

    /// Injects a supply droop by forcing the LDO code down by `codes`
    /// steps; used by droop-tracking tests and failure-injection studies.
    pub fn inject_droop(&mut self, codes: u32) {
        let new = self.ldo.code().saturating_sub(codes);
        self.ldo.set_code(new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uvfr() -> Uvfr {
        Uvfr::new(
            VfCurve::linear(0.5, 1.0, 200.0, 800.0),
            UvfrConfig::default(),
        )
    }

    #[test]
    fn settles_to_target_within_tolerance() {
        let mut u = uvfr();
        for target in [300.0, 500.0, 750.0, 250.0] {
            u.set_target(target);
            let steps = u.settle(1, 200).expect("must settle");
            assert!(steps < 100, "target {target} took {steps} steps");
            assert!(
                (u.frequency() - target).abs() <= 2.0 * u.tdc().resolution_mhz(),
                "target {target}, got {}",
                u.frequency()
            );
        }
    }

    #[test]
    fn tracks_downward_transitions() {
        let mut u = uvfr();
        u.set_target(800.0);
        u.settle(1, 500).unwrap();
        let high = u.frequency();
        u.set_target(200.0);
        u.settle(1, 500).unwrap();
        assert!(u.frequency() < high);
    }

    #[test]
    fn clamps_unreachable_targets() {
        let mut u = uvfr();
        u.set_target(10_000.0);
        u.settle(1, 500).unwrap();
        assert!(u.frequency() <= 800.0 + 1e-9);
        u.set_target(0.0);
        u.settle(1, 500).unwrap();
        assert!(u.frequency() >= 200.0 - 1e-9);
    }

    #[test]
    fn droop_recovers() {
        let mut u = uvfr();
        u.set_target(600.0);
        u.settle(1, 500).unwrap();
        let settled = u.frequency();
        u.inject_droop(40);
        assert!(u.frequency() < settled, "droop must slow the clock (CPR)");
        u.settle(1, 500).expect("loop must recover from droop");
        assert!((u.frequency() - 600.0).abs() <= 2.0 * u.tdc().resolution_mhz());
    }

    #[test]
    fn frequency_never_exceeds_voltage_capability() {
        // The UVFR invariant: the tile clock is always the replica
        // frequency at the present voltage, never above it.
        let mut u = uvfr();
        u.set_target(700.0);
        for _ in 0..50 {
            u.step();
            let cap = u.oscillator().curve().freq_at(u.voltage());
            assert!(u.frequency() <= cap + 1e-9);
        }
    }

    #[test]
    fn step_counter() {
        let mut u = uvfr();
        u.set_target(400.0);
        u.step();
        u.step();
        assert_eq!(u.steps(), 2);
    }
}
