//! # blitzcoin-power
//!
//! Per-tile power substrate for the BlitzCoin reproduction: accelerator
//! power models and the Unified Voltage and Frequency Regulation (UVFR)
//! actuator stack of Section IV-A.
//!
//! BlitzCoin expresses power budgets in *coins*; each tile converts its
//! coin count to a frequency target through a lookup table built from a
//! pre-characterization of the tile's power profile, then actuates that
//! target with a single unified control loop:
//!
//! ```text
//! coins ──LUT──► F_target ──┐
//!                           ▼
//!                    LDO controller (PID) ──► LDO code ──► V_tile
//!                           ▲                                 │
//!                           └──── TDC code ◄── TDC ◄── RO(V) ─┘
//! ```
//!
//! - [`curve::VfCurve`]: monotone voltage↔frequency characterization.
//! - [`model`]: analytic P(V, F) models for the six accelerator classes the
//!   paper evaluates (FFT, Viterbi, NVDLA on the 3x3 SoC; GEMM, Conv2D,
//!   Vision on the 4x4 SoC), calibrated per DESIGN.md §5 so aggregate
//!   budgets match the paper's (Fig 13 substitution).
//! - [`ldo::Ldo`]: digital low-drop-out regulator with a PID controller.
//! - [`oscillator::RingOscillator`]: free-running critical-path-replica
//!   oscillator — for any tile voltage it produces a frequency close to the
//!   tile's maximum at that voltage.
//! - [`tdc::Tdc`]: counter-based time-to-digital converter providing the
//!   loop's frequency feedback.
//! - [`uvfr::Uvfr`]: the assembled unified loop with settling dynamics.
//! - [`lut::CoinLut`]: 6-bit (64-level) coin-to-frequency lookup table.
//!
//! # Example
//!
//! ```
//! use blitzcoin_power::{AcceleratorClass, CoinLut, PowerModel};
//!
//! let nvdla = PowerModel::of(AcceleratorClass::Nvdla);
//! // Build the per-tile LUT used by the BlitzCoin FSM: 64 coins at
//! // 5 mW/coin spans the NVDLA's full power range.
//! let lut = CoinLut::build(&nvdla, 5.0, 64);
//! assert!(lut.f_target(64) >= lut.f_target(32));
//! let f = lut.f_target(32); // 160 mW worth of coins
//! assert!(f > 0.0 && f <= nvdla.f_max());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod curve;
pub mod ldo;
pub mod lut;
pub mod model;
pub mod oscillator;
pub mod proxy;
pub mod tdc;
pub mod uvfr;

pub use area::AreaModel;
pub use curve::VfCurve;
pub use ldo::{Ldo, PidGains};
pub use lut::CoinLut;
pub use model::{AcceleratorClass, PowerModel};
pub use oscillator::RingOscillator;
pub use proxy::{ActivityCounters, PowerProxy};
pub use tdc::Tdc;
pub use uvfr::{Uvfr, UvfrConfig};
