//! Accelerator power models (the Fig 13 substitution).
//!
//! The paper characterizes each accelerator's power across DVFS operating
//! points from ASIC measurement (FFT, Viterbi, NVDLA) and post-synthesis
//! Cadence Joules runs (GEMM, Conv2D, Vision). Neither source is available,
//! so — per the substitution rule in DESIGN.md — each class gets an
//! analytic model
//!
//! ```text
//! P(F) = l0·V(F) + c·F·V(F)²          (leakage + dynamic CV²F)
//! ```
//!
//! with `V(F)` the class's V-F curve and `(l0, c)` solved so the curve
//! passes exactly through the class's characterized `(F_min, P_min)` and
//! `(F_max, P_max)` corners. The corner values are chosen so that the
//! paper's aggregate budget ratios hold: the 3x3 SoC's accelerators total
//! 400 mW at F_max (so the evaluated 120/60 mW budgets are 30%/15%), and
//! the 4x4 SoC's total 1350 mW (450/900 mW = 33%/66%).
//!
//! The paper further measures that at minimum voltage the clock can be
//! scaled far below F_min, producing a 7.5x power reduction for idle
//! tiles; [`PowerModel::idle_power`] reproduces that.

use crate::curve::VfCurve;

/// The accelerator classes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorClass {
    /// Fast Fourier Transform (depth estimation; 3x3 SoC, 3 instances).
    Fft,
    /// Viterbi decoder (V2V communication; 3x3 SoC, 2 instances).
    Viterbi,
    /// NVIDIA Deep Learning Accelerator (object detection; 3x3 SoC).
    Nvdla,
    /// Dense matrix multiplication (CNN inference; 4x4 SoC).
    Gemm,
    /// 2-D convolution (CNN inference; 4x4 SoC).
    Conv2d,
    /// Computer-vision accelerator: noise filtering, histogram
    /// equalization, discrete wavelet transform (4x4 SoC).
    Vision,
}

blitzcoin_sim::json_unit_enum!(AcceleratorClass {
    Fft,
    Viterbi,
    Nvdla,
    Gemm,
    Conv2d,
    Vision
});

impl AcceleratorClass {
    /// All classes.
    pub const ALL: [AcceleratorClass; 6] = [
        AcceleratorClass::Fft,
        AcceleratorClass::Viterbi,
        AcceleratorClass::Nvdla,
        AcceleratorClass::Gemm,
        AcceleratorClass::Conv2d,
        AcceleratorClass::Vision,
    ];

    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AcceleratorClass::Fft => "FFT",
            AcceleratorClass::Viterbi => "Viterbi",
            AcceleratorClass::Nvdla => "NVDLA",
            AcceleratorClass::Gemm => "GEMM",
            AcceleratorClass::Conv2d => "Conv2D",
            AcceleratorClass::Vision => "Vision",
        }
    }

    /// Characterization corners for this class:
    /// `(v_min, v_max, f_min_mhz, f_max_mhz, p_min_mw, p_max_mw)`.
    ///
    /// FFT/Viterbi span 0.5-1.0 V and NVDLA 0.6-1.0 V as in Fig 13 (left);
    /// GEMM/Conv2D/Vision span 0.6-0.9 V as in Fig 13 (right). The minimum
    /// power corner gives each class a 5-8x power range across its DVFS
    /// points (as the Fig 13 curves show) while keeping the calibrated
    /// leakage coefficient non-negative.
    pub fn corners(self) -> (f64, f64, f64, f64, f64, f64) {
        match self {
            AcceleratorClass::Fft => (0.5, 1.0, 200.0, 800.0, 6.25, 50.0),
            AcceleratorClass::Viterbi => (0.5, 1.0, 150.0, 600.0, 3.75, 30.0),
            AcceleratorClass::Nvdla => (0.6, 1.0, 300.0, 800.0, 26.0, 190.0),
            AcceleratorClass::Gemm => (0.6, 0.9, 250.0, 700.0, 24.0, 150.0),
            AcceleratorClass::Conv2d => (0.6, 0.9, 250.0, 650.0, 17.5, 100.0),
            AcceleratorClass::Vision => (0.6, 0.9, 200.0, 500.0, 11.5, 62.5),
        }
    }
}

impl std::fmt::Display for AcceleratorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An accelerator tile's power model: V-F curve plus calibrated
/// leakage/dynamic coefficients.
///
/// # Example
///
/// ```
/// use blitzcoin_power::{AcceleratorClass, PowerModel};
///
/// let fft = PowerModel::of(AcceleratorClass::Fft);
/// assert_eq!(fft.power_at(fft.f_max()), 50.0);
/// // inverse lookup: what frequency fits a 20 mW allocation?
/// let f = fft.freq_for_power(20.0);
/// assert!((fft.power_at(f) - 20.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    class: AcceleratorClass,
    curve: VfCurve,
    /// Leakage coefficient: P_leak = l0 · V  (mW per volt).
    l0: f64,
    /// Dynamic coefficient: P_dyn = c · F · V²  (mW per MHz·V²).
    c: f64,
}

impl PowerModel {
    /// Builds the calibrated model for an accelerator class.
    pub fn of(class: AcceleratorClass) -> Self {
        let (v_min, v_max, f_min, f_max, p_min, p_max) = class.corners();
        let curve = VfCurve::linear(v_min, v_max, f_min, f_max);
        // Solve  l0·v_min + c·f_min·v_min² = p_min
        //        l0·v_max + c·f_max·v_max² = p_max
        let a = [
            [v_min, f_min * v_min * v_min],
            [v_max, f_max * v_max * v_max],
        ];
        let b = [p_min, p_max];
        let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
        assert!(det.abs() > 1e-12, "degenerate calibration corners");
        let l0 = (b[0] * a[1][1] - a[0][1] * b[1]) / det;
        let c = (a[0][0] * b[1] - b[0] * a[1][0]) / det;
        assert!(c > 0.0, "dynamic coefficient must be positive");
        assert!(l0 >= 0.0, "leakage coefficient must be non-negative");
        PowerModel {
            class,
            curve,
            l0,
            c,
        }
    }

    /// Builds a custom model from explicit corners (used by tests and
    /// design-space sweeps).
    ///
    /// # Panics
    /// Panics if the corners are degenerate.
    pub fn custom(class: AcceleratorClass, curve: VfCurve, p_min: f64, p_max: f64) -> Self {
        let (v_min, v_max) = (curve.v_min(), curve.v_max());
        let (f_min, f_max) = (curve.f_min(), curve.f_max());
        let a = [
            [v_min, f_min * v_min * v_min],
            [v_max, f_max * v_max * v_max],
        ];
        let det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
        assert!(det.abs() > 1e-12, "degenerate calibration corners");
        let l0 = (p_min * a[1][1] - a[0][1] * p_max) / det;
        let c = (a[0][0] * p_max - p_min * a[1][0]) / det;
        assert!(c > 0.0, "dynamic coefficient must be positive");
        PowerModel {
            class,
            curve,
            l0,
            c,
        }
    }

    /// The accelerator class.
    pub fn class(&self) -> AcceleratorClass {
        self.class
    }

    /// The V-F characterization curve.
    pub fn curve(&self) -> &VfCurve {
        &self.curve
    }

    /// Maximum operating frequency (MHz).
    pub fn f_max(&self) -> f64 {
        self.curve.f_max()
    }

    /// Minimum DVFS operating frequency (MHz).
    pub fn f_min(&self) -> f64 {
        self.curve.f_min()
    }

    /// The lowest DVFS frequency the tile can *run* at: at minimum
    /// voltage the clock scales well below the V-F curve's F_min (the
    /// "triangle marker" extension of the paper's Fig 13 NVDLA curve).
    pub fn f_floor(&self) -> f64 {
        self.f_min() / 8.0
    }

    /// Power at the running floor (minimum voltage, deeply scaled clock).
    pub fn power_floor(&self) -> f64 {
        self.power_at(self.f_floor())
    }

    /// Power at frequency `f` (MHz), running at the minimal voltage that
    /// sustains `f` (this is what UVFR guarantees). Below F_min the tile
    /// stays at V_min and only the clock scales (the Fig 13 extension);
    /// `f` is clamped to `[f_floor, f_max]`.
    pub fn power_at(&self, f: f64) -> f64 {
        let f = f.clamp(self.f_floor(), self.f_max());
        let v = self.curve.voltage_for(f); // clamps to v_min below f_min
        self.l0 * v + self.c * f * v * v
    }

    /// Power at the maximum operating point (mW).
    pub fn p_max(&self) -> f64 {
        self.power_at(self.f_max())
    }

    /// Power at the minimum DVFS operating point (mW).
    pub fn p_min(&self) -> f64 {
        self.power_at(self.f_min())
    }

    /// Idle power (mW): at minimum voltage the clock is scaled far below
    /// F_min, producing the paper's measured 7.5x reduction versus P_min.
    pub fn idle_power(&self) -> f64 {
        self.p_min() / 7.5
    }

    /// Inverse lookup: the highest frequency whose power fits within
    /// `budget_mw`. Returns `f_floor` if even the deepest clock-scaled
    /// point exceeds the budget (the tile can then fall back to idle),
    /// and `f_max` if the budget exceeds the maximum power.
    pub fn freq_for_power(&self, budget_mw: f64) -> f64 {
        if budget_mw <= self.power_floor() {
            return self.f_floor();
        }
        if budget_mw >= self.p_max() {
            return self.f_max();
        }
        // P(F) is strictly increasing over [f_floor, f_max]; bisect.
        let (mut lo, mut hi) = (self.f_floor(), self.f_max());
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.power_at(mid) <= budget_mw {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Samples `(frequency, power)` points across the DVFS range, for
    /// emitting Fig 13-style characterization tables.
    pub fn characterization(&self, samples: usize) -> Vec<(f64, f64)> {
        assert!(samples >= 2, "need at least two samples");
        (0..samples)
            .map(|i| {
                let f =
                    self.f_min() + (self.f_max() - self.f_min()) * i as f64 / (samples - 1) as f64;
                (f, self.power_at(f))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_corners() {
        for class in AcceleratorClass::ALL {
            let m = PowerModel::of(class);
            let (_, _, _, _, p_min, p_max) = class.corners();
            assert!((m.p_max() - p_max).abs() < 1e-9, "{class} p_max");
            assert!((m.p_min() - p_min).abs() < 1e-9, "{class} p_min");
        }
    }

    #[test]
    fn aggregate_budgets_match_paper() {
        // 3x3 SoC: 3 FFT + 2 Viterbi + 1 NVDLA = 400 mW at F_max.
        let total_3x3 = 3.0 * PowerModel::of(AcceleratorClass::Fft).p_max()
            + 2.0 * PowerModel::of(AcceleratorClass::Viterbi).p_max()
            + PowerModel::of(AcceleratorClass::Nvdla).p_max();
        assert!((total_3x3 - 400.0).abs() < 1e-6);
        // 4x4 SoC: 4 GEMM + 5 Conv2D + 4 Vision = 1350 mW at F_max.
        let total_4x4 = 4.0 * PowerModel::of(AcceleratorClass::Gemm).p_max()
            + 5.0 * PowerModel::of(AcceleratorClass::Conv2d).p_max()
            + 4.0 * PowerModel::of(AcceleratorClass::Vision).p_max();
        assert!((total_4x4 - 1350.0).abs() < 1e-6);
    }

    #[test]
    fn power_is_monotone_in_frequency() {
        for class in AcceleratorClass::ALL {
            let m = PowerModel::of(class);
            let pts = m.characterization(50);
            for w in pts.windows(2) {
                assert!(w[1].1 > w[0].1, "{class} non-monotone at {:?}", w);
            }
        }
    }

    #[test]
    fn power_is_convex_in_frequency() {
        // CV²F with V linear in F is a cubic with positive leading terms;
        // convexity means DVFS down is super-linearly cheaper, the effect
        // that makes RP allocation beat AP (Section VI-A).
        let m = PowerModel::of(AcceleratorClass::Nvdla);
        let pts = m.characterization(20);
        for w in pts.windows(3) {
            let d1 = w[1].1 - w[0].1;
            let d2 = w[2].1 - w[1].1;
            assert!(d2 >= d1 - 1e-9);
        }
    }

    #[test]
    fn inverse_round_trips() {
        for class in AcceleratorClass::ALL {
            let m = PowerModel::of(class);
            for i in 1..=10 {
                let budget = m.p_min() + (m.p_max() - m.p_min()) * i as f64 / 10.0;
                let f = m.freq_for_power(budget);
                assert!(
                    (m.power_at(f) - budget).abs() < 1e-6,
                    "{class}: budget {budget} -> f {f} -> {}",
                    m.power_at(f)
                );
            }
        }
    }

    #[test]
    fn inverse_clamps() {
        let m = PowerModel::of(AcceleratorClass::Fft);
        assert_eq!(m.freq_for_power(0.0), m.f_floor());
        assert_eq!(m.freq_for_power(1e9), m.f_max());
    }

    #[test]
    fn sub_fmin_extension_scales_clock_at_vmin() {
        // Fig 13's triangle-marker extension: below F_min the voltage
        // pins at V_min and power falls roughly linearly with the clock.
        let m = PowerModel::of(AcceleratorClass::Nvdla);
        let p_ext = m.power_at(m.f_min() / 2.0);
        assert!(p_ext < m.p_min());
        assert!(p_ext > 0.0);
        assert!((m.curve().voltage_for(m.f_min() / 2.0) - 0.6).abs() < 1e-9);
        // inverse lookup reaches the extension region
        let f = m.freq_for_power(15.0); // below NVDLA's 26 mW p_min
        assert!(f < m.f_min() && f >= m.f_floor());
        assert!((m.power_at(f) - 15.0).abs() < 1e-6);
    }

    #[test]
    fn leakage_is_non_negative_for_all_classes() {
        for class in AcceleratorClass::ALL {
            // power at the floor must be positive and below p_min
            let m = PowerModel::of(class);
            assert!(m.power_floor() > 0.0, "{class}");
            assert!(m.power_floor() < m.p_min(), "{class}");
        }
    }

    #[test]
    fn idle_power_is_7p5x_below_pmin() {
        let m = PowerModel::of(AcceleratorClass::Viterbi);
        assert!((m.p_min() / m.idle_power() - 7.5).abs() < 1e-9);
        assert!(m.idle_power() > 0.0);
        assert!(m.idle_power() < m.power_floor());
    }

    #[test]
    fn power_range_spans_10x_across_classes() {
        // Section II-A: heterogeneous accelerators span up to ~10x power.
        let p: Vec<f64> = AcceleratorClass::ALL
            .iter()
            .map(|&c| PowerModel::of(c).p_max())
            .collect();
        let ratio =
            p.iter().cloned().fold(f64::MIN, f64::max) / p.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            ratio > 5.0,
            "expected a wide heterogeneous range, got {ratio}"
        );
    }

    #[test]
    fn characterization_sample_count() {
        let m = PowerModel::of(AcceleratorClass::Gemm);
        assert_eq!(m.characterization(7).len(), 7);
        let pts = m.characterization(2);
        assert_eq!(pts[0].0, m.f_min());
        assert_eq!(pts[1].0, m.f_max());
    }
}
