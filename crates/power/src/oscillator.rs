//! Free-running ring oscillator (critical-path replica).
//!
//! Each tile's clock comes from a local ring oscillator supplied by the
//! tile voltage and tuned to act as a Critical Path Replica: for any value
//! of V it generates a frequency close to the tile's maximum frequency at
//! that voltage (Section IV-A). Because the RO tracks the same voltage as
//! the logic, a voltage droop automatically stretches the next clock edge —
//! the self-timing property the UVFR scheme relies on.

use crate::curve::VfCurve;

/// A critical-path-replica ring oscillator.
///
/// The oscillator output tracks the tile's V-F curve with a configurable
/// multiplicative tracking margin (a real replica is tuned a few percent
/// slow so the logic always meets timing).
///
/// # Example
///
/// ```
/// use blitzcoin_power::{RingOscillator, VfCurve};
///
/// let curve = VfCurve::linear(0.5, 1.0, 200.0, 800.0);
/// let ro = RingOscillator::new(curve, 0.97);
/// // at 1.0 V the replica runs at 97% of the 800 MHz critical-path limit
/// assert!((ro.freq_at(1.0) - 776.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RingOscillator {
    curve: VfCurve,
    margin: f64,
}

impl RingOscillator {
    /// Creates a replica oscillator over the tile's V-F curve.
    ///
    /// `margin` is the fraction of the critical-path frequency the replica
    /// produces (e.g. 0.97 for a 3% guardband).
    ///
    /// # Panics
    /// Panics unless `0 < margin <= 1`.
    pub fn new(curve: VfCurve, margin: f64) -> Self {
        assert!(
            margin > 0.0 && margin <= 1.0,
            "tracking margin must be in (0, 1]"
        );
        RingOscillator { curve, margin }
    }

    /// Creates a perfectly tracking replica (margin 1.0); convenient for
    /// behavioural studies where the guardband is irrelevant.
    pub fn ideal(curve: VfCurve) -> Self {
        RingOscillator::new(curve, 1.0)
    }

    /// The oscillator frequency (MHz) at tile voltage `v`.
    pub fn freq_at(&self, v: f64) -> f64 {
        self.curve.freq_at(v) * self.margin
    }

    /// The voltage required for the oscillator to run at frequency `f`.
    pub fn voltage_for(&self, f: f64) -> f64 {
        self.curve.voltage_for(f / self.margin)
    }

    /// The replica's tracking margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Maximum output frequency (at V_max).
    pub fn f_max(&self) -> f64 {
        self.freq_at(self.curve.v_max())
    }

    /// Minimum output frequency (at V_min).
    pub fn f_min(&self) -> f64 {
        self.freq_at(self.curve.v_min())
    }

    /// The underlying V-F curve.
    pub fn curve(&self) -> &VfCurve {
        &self.curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> VfCurve {
        VfCurve::linear(0.5, 1.0, 200.0, 800.0)
    }

    #[test]
    fn tracks_curve_with_margin() {
        let ro = RingOscillator::new(curve(), 0.95);
        assert!((ro.freq_at(0.75) - 500.0 * 0.95).abs() < 1e-9);
        assert_eq!(ro.f_max(), 800.0 * 0.95);
        assert_eq!(ro.f_min(), 200.0 * 0.95);
        assert_eq!(ro.margin(), 0.95);
    }

    #[test]
    fn ideal_replica_is_exact() {
        let ro = RingOscillator::ideal(curve());
        assert_eq!(ro.freq_at(1.0), 800.0);
        assert_eq!(ro.freq_at(0.5), 200.0);
    }

    #[test]
    fn droop_slows_clock() {
        // Section IV-A: when a voltage droop occurs, the oscillator slows,
        // delaying the next clock edge.
        let ro = RingOscillator::ideal(curve());
        let nominal = ro.freq_at(0.8);
        let drooped = ro.freq_at(0.72);
        assert!(drooped < nominal);
    }

    #[test]
    fn voltage_for_round_trip() {
        let ro = RingOscillator::new(curve(), 0.9);
        for f in [200.0, 400.0, 700.0] {
            let v = ro.voltage_for(f);
            assert!((ro.freq_at(v) - f).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn zero_margin_panics() {
        RingOscillator::new(curve(), 0.0);
    }
}
