//! Counter-based time-to-digital converter.
//!
//! The UVFR loop's feedback comparator is "simple to implement as a
//! counter-based Time-to-Digital Converter rather than a complex,
//! fully-analog voltage comparator" (Section IV-A): the TDC counts ring
//! oscillator edges within a fixed measurement window clocked by the NoC
//! domain, producing a digital code proportional to the tile frequency.

/// A counter-based TDC.
///
/// # Example
///
/// ```
/// use blitzcoin_power::Tdc;
///
/// // 64 NoC cycles @ 800 MHz = 80 ns window
/// let tdc = Tdc::new(64);
/// // a 400 MHz tile clock produces 32 counts
/// assert_eq!(tdc.code_for(400.0), 32);
/// // quantization step = 1 count = 12.5 MHz
/// assert!((tdc.resolution_mhz() - 12.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tdc {
    /// Measurement window length, in NoC cycles (800 MHz).
    window_noc_cycles: u32,
}

impl Tdc {
    /// NoC frequency in MHz (fixed in the fabricated SoC).
    pub const NOC_MHZ: f64 = 800.0;

    /// Creates a TDC with a window of `window_noc_cycles` NoC cycles.
    ///
    /// # Panics
    /// Panics if the window is zero.
    pub fn new(window_noc_cycles: u32) -> Self {
        assert!(window_noc_cycles > 0, "TDC window must be positive");
        Tdc { window_noc_cycles }
    }

    /// The window length in NoC cycles.
    pub fn window(&self) -> u32 {
        self.window_noc_cycles
    }

    /// The window length in nanoseconds.
    pub fn window_ns(&self) -> f64 {
        self.window_noc_cycles as f64 * 1e3 / Self::NOC_MHZ
    }

    /// The digital code produced for tile frequency `f_mhz` (edge count in
    /// one window, truncated as a real counter would).
    pub fn code_for(&self, f_mhz: f64) -> u32 {
        assert!(f_mhz >= 0.0, "frequency must be non-negative");
        (f_mhz * self.window_noc_cycles as f64 / Self::NOC_MHZ).floor() as u32
    }

    /// The tile frequency (MHz) corresponding to a code (center of the
    /// quantization bin).
    pub fn freq_for(&self, code: u32) -> f64 {
        (code as f64 + 0.5) * Self::NOC_MHZ / self.window_noc_cycles as f64
    }

    /// Frequency quantization step (MHz per count).
    pub fn resolution_mhz(&self) -> f64 {
        Self::NOC_MHZ / self.window_noc_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_is_proportional_to_frequency() {
        let tdc = Tdc::new(128);
        assert_eq!(tdc.code_for(800.0), 128);
        assert_eq!(tdc.code_for(400.0), 64);
        assert_eq!(tdc.code_for(0.0), 0);
    }

    #[test]
    fn truncation_matches_hardware_counter() {
        let tdc = Tdc::new(64);
        // 399 MHz * 80ns = 31.92 edges -> counter reads 31
        assert_eq!(tdc.code_for(399.0), 31);
    }

    #[test]
    fn round_trip_within_one_lsb() {
        let tdc = Tdc::new(64);
        for f in [100.0, 250.0, 333.0, 795.0] {
            let rec = tdc.freq_for(tdc.code_for(f));
            assert!(
                (rec - f).abs() <= tdc.resolution_mhz(),
                "f={f} rec={rec} res={}",
                tdc.resolution_mhz()
            );
        }
    }

    #[test]
    fn longer_window_improves_resolution() {
        assert!(Tdc::new(256).resolution_mhz() < Tdc::new(32).resolution_mhz());
    }

    #[test]
    fn window_ns() {
        assert!((Tdc::new(64).window_ns() - 80.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        Tdc::new(0);
    }
}
