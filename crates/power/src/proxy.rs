//! Activity-counter power proxies for programmable tiles.
//!
//! Section IV-C: extending BlitzCoin to CPU tiles "would require the
//! power-to-frequency LUT to be dynamically adjusted to support the wide
//! variation in workloads run on CPUs. Previous work \[18\], \[75\] have
//! demonstrated the use of activity counters and other power proxies for
//! this purpose." This module implements that extension: a weighted
//! activity-counter power estimator in the style of the POWER7 proxies
//! of Floyd et al. \[18\] and Huang et al. \[75\], plus the dynamic LUT
//! rescaling it enables.

use crate::lut::CoinLut;
use crate::model::PowerModel;

/// One control period's worth of micro-architectural activity counters,
/// normalized per cycle (0.0 = idle, 1.0 = every-cycle activity).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActivityCounters {
    /// Instructions dispatched per cycle (0..~1 for a single-issue CVA6).
    pub dispatch: f64,
    /// Fraction of cycles with an L1/L2 access.
    pub cache_access: f64,
    /// Fraction of cycles with a floating-point operation.
    pub fpu: f64,
    /// Fraction of cycles with a load-store-unit operation.
    pub lsu: f64,
}

impl ActivityCounters {
    /// Clamps every counter into `[0, 1]` (hardware counters saturate).
    pub fn clamped(self) -> Self {
        ActivityCounters {
            dispatch: self.dispatch.clamp(0.0, 1.0),
            cache_access: self.cache_access.clamp(0.0, 1.0),
            fpu: self.fpu.clamp(0.0, 1.0),
            lsu: self.lsu.clamp(0.0, 1.0),
        }
    }
}

/// A weighted activity-counter power proxy.
///
/// Estimated power at frequency `f` and counters `a`:
///
/// ```text
/// P(f, a) = P_idle + f/f_max · (w_base + w·a) · P_dyn_max
/// ```
///
/// so a fully-active workload at f_max draws the characterized maximum
/// and the utilization factor scales the dynamic share.
///
/// # Example
///
/// ```
/// use blitzcoin_power::proxy::{ActivityCounters, PowerProxy};
///
/// let proxy = PowerProxy::cva6();
/// let busy = ActivityCounters { dispatch: 0.9, cache_access: 0.4, fpu: 0.3, lsu: 0.35 };
/// let idle = ActivityCounters::default();
/// assert!(proxy.estimate_mw(800.0, busy) > 2.0 * proxy.estimate_mw(800.0, idle));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerProxy {
    f_max_mhz: f64,
    p_idle_mw: f64,
    p_dyn_max_mw: f64,
    /// Activity-independent dynamic share (clock tree, fetch).
    w_base: f64,
    /// Weights for (dispatch, cache, fpu, lsu); with `w_base` they sum
    /// to 1 at full activity.
    weights: [f64; 4],
}

impl PowerProxy {
    /// A proxy calibrated for the CVA6-class core of the evaluated SoCs
    /// (a Linux-capable in-order RV64 core: ~40 mW dynamic at 800 MHz,
    /// 4 mW idle).
    pub fn cva6() -> Self {
        PowerProxy::new(800.0, 4.0, 40.0, 0.3, [0.3, 0.15, 0.15, 0.1])
    }

    /// Builds a proxy.
    ///
    /// # Panics
    /// Panics unless the base weight plus counter weights sum to 1 (the
    /// full-activity point must reproduce `p_dyn_max`).
    pub fn new(
        f_max_mhz: f64,
        p_idle_mw: f64,
        p_dyn_max_mw: f64,
        w_base: f64,
        weights: [f64; 4],
    ) -> Self {
        let total = w_base + weights.iter().sum::<f64>();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "weights must sum to 1, got {total}"
        );
        assert!(f_max_mhz > 0.0 && p_idle_mw >= 0.0 && p_dyn_max_mw > 0.0);
        PowerProxy {
            f_max_mhz,
            p_idle_mw,
            p_dyn_max_mw,
            w_base,
            weights,
        }
    }

    /// Estimated power (mW) at clock `f_mhz` with counters `a`.
    pub fn estimate_mw(&self, f_mhz: f64, a: ActivityCounters) -> f64 {
        let a = a.clamped();
        let util = self.w_base
            + self.weights[0] * a.dispatch
            + self.weights[1] * a.cache_access
            + self.weights[2] * a.fpu
            + self.weights[3] * a.lsu;
        self.p_idle_mw + (f_mhz / self.f_max_mhz).clamp(0.0, 1.5) * util * self.p_dyn_max_mw
    }

    /// Maximum estimated power (full activity at f_max).
    pub fn p_max_mw(&self) -> f64 {
        self.p_idle_mw + self.p_dyn_max_mw
    }

    /// The *dynamic LUT adjustment* of Section IV-C: rebuilds a CPU
    /// tile's coin LUT for the workload currently running, by scaling the
    /// reference model's power axis to the proxy-observed utilization.
    /// A low-activity workload then gets more frequency per coin, which
    /// is exactly why CPU LUTs cannot be static.
    ///
    /// # Panics
    /// Panics if the observed utilization estimate is non-positive.
    pub fn adjusted_lut(
        &self,
        reference: &PowerModel,
        observed: ActivityCounters,
        coin_value_mw: f64,
        levels: u32,
    ) -> CoinLut {
        let full = self.estimate_mw(
            self.f_max_mhz,
            ActivityCounters {
                dispatch: 1.0,
                cache_access: 1.0,
                fpu: 1.0,
                lsu: 1.0,
            },
        );
        let now = self.estimate_mw(self.f_max_mhz, observed);
        assert!(now > 0.0, "observed power estimate must be positive");
        // effective coin value seen by this workload: a workload drawing
        // half the reference power stretches each coin twice as far
        let scale = (full / now).clamp(0.25, 8.0);
        CoinLut::build(reference, coin_value_mw * scale, levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AcceleratorClass;

    fn busy() -> ActivityCounters {
        ActivityCounters {
            dispatch: 1.0,
            cache_access: 1.0,
            fpu: 1.0,
            lsu: 1.0,
        }
    }

    #[test]
    fn estimates_span_idle_to_max() {
        let p = PowerProxy::cva6();
        assert!((p.estimate_mw(800.0, busy()) - p.p_max_mw()).abs() < 1e-9);
        let idle = p.estimate_mw(800.0, ActivityCounters::default());
        assert!(idle > p.p_idle_mw && idle < p.p_max_mw() / 2.0);
        assert!((p.estimate_mw(0.0, busy()) - p.p_idle_mw).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_frequency_and_activity() {
        let p = PowerProxy::cva6();
        assert!(p.estimate_mw(400.0, busy()) < p.estimate_mw(800.0, busy()));
        let some = ActivityCounters {
            dispatch: 0.5,
            ..ActivityCounters::default()
        };
        assert!(p.estimate_mw(800.0, some) < p.estimate_mw(800.0, busy()));
    }

    #[test]
    fn counters_saturate() {
        let p = PowerProxy::cva6();
        let over = ActivityCounters {
            dispatch: 7.0,
            cache_access: 7.0,
            fpu: 7.0,
            lsu: 7.0,
        };
        assert!((p.estimate_mw(800.0, over) - p.p_max_mw()).abs() < 1e-9);
    }

    #[test]
    fn dynamic_lut_gives_light_workloads_more_frequency() {
        let p = PowerProxy::cva6();
        let reference = PowerModel::of(AcceleratorClass::Fft);
        let light = ActivityCounters {
            dispatch: 0.2,
            ..ActivityCounters::default()
        };
        let lut_light = p.adjusted_lut(&reference, light, 1.0, 64);
        let lut_heavy = p.adjusted_lut(&reference, busy(), 1.0, 64);
        // same coin count buys a lighter workload more clock
        assert!(lut_light.f_target(8) >= lut_heavy.f_target(8));
        assert!(lut_light.f_target(16) > lut_heavy.f_target(16));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_rejected() {
        PowerProxy::new(800.0, 4.0, 40.0, 0.5, [0.5, 0.5, 0.0, 0.0]);
    }
}
