//! Area-overhead model of the BlitzCoin hardware (Section IV-A).
//!
//! The paper reports a fully-synthesizable UVFR with under 1% area
//! overhead in a 1 mm² tile: 0.49% for the TDC and coin-exchange logic,
//! 0.04% for the ring oscillator, and 0.01-0.03% for the LDO — compared
//! against 36%/16%/17% for prior switched-capacitor designs and
//! 1.4%/4.5% for prior digital LDOs. This module encodes that cost model
//! so design-space studies can weigh overhead against response time.

/// Per-component area overheads, as fractions of a reference tile area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Reference tile area, mm².
    pub tile_mm2: f64,
    /// TDC + BlitzCoin FSM + LUT + CSRs (the NoC-domain socket logic).
    pub tdc_and_fsm_frac: f64,
    /// Free-running ring oscillator.
    pub ro_frac: f64,
    /// Digital LDO power-gate array (scales with tile current, hence the
    /// range in the paper; this is the upper bound).
    pub ldo_frac: f64,
}

impl Default for AreaModel {
    /// The paper's reported 12 nm numbers for a 1 mm² tile.
    fn default() -> Self {
        AreaModel {
            tile_mm2: 1.0,
            tdc_and_fsm_frac: 0.0049,
            ro_frac: 0.0004,
            ldo_frac: 0.0003,
        }
    }
}

impl AreaModel {
    /// Total per-tile overhead fraction.
    pub fn total_frac(&self) -> f64 {
        self.tdc_and_fsm_frac + self.ro_frac + self.ldo_frac
    }

    /// Total per-tile overhead in mm².
    pub fn total_mm2(&self) -> f64 {
        self.total_frac() * self.tile_mm2
    }

    /// SoC-level overhead in mm² for `n_tiles` managed tiles.
    pub fn soc_overhead_mm2(&self, n_tiles: usize) -> f64 {
        self.total_mm2() * n_tiles as f64
    }

    /// Overhead fractions reported for prior regulator designs
    /// (Section IV-A's comparison): `(label, fraction)`.
    pub fn prior_art() -> [(&'static str, f64); 5] {
        [
            ("switched-cap + UVFR [51]", 0.36),
            ("switched-cap + UVFR [56]", 0.16),
            ("switched-cap [61]", 0.17),
            ("digital LDO [54]", 0.014),
            ("digital LDO + UVFR [62]", 0.045),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_under_one_percent() {
        let a = AreaModel::default();
        assert!(
            a.total_frac() < 0.01,
            "paper claims <1%: {}",
            a.total_frac()
        );
        assert!(a.total_frac() > 0.004);
    }

    #[test]
    fn beats_every_prior_design() {
        let ours = AreaModel::default().total_frac();
        for (label, frac) in AreaModel::prior_art() {
            assert!(ours < frac, "{label}: {frac} should exceed ours {ours}");
        }
    }

    #[test]
    fn soc_overhead_scales_with_tiles() {
        let a = AreaModel::default();
        assert!((a.soc_overhead_mm2(10) - 10.0 * a.total_mm2()).abs() < 1e-12);
        // 10 managed tiles of the 64 mm2 prototype cost well under 0.1 mm2
        assert!(a.soc_overhead_mm2(10) < 0.1);
    }
}
