//! Digital low-drop-out regulator with PID control.
//!
//! BlitzCoin's per-tile regulation uses a fully-synthesizable digital LDO
//! (Section IV-A): a digital code selects how many power-gate legs are on,
//! setting the tile voltage between V_min and V_max; the LDO controller is
//! a PID loop comparing the frequency target against the TDC readout.

/// PID controller gains (in LDO codes per TDC count of error).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidGains {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
}

impl Default for PidGains {
    fn default() -> Self {
        // Tuned for stable, fast settling with the default 8-bit code and
        // 64-cycle TDC window; verified by the settling tests in `uvfr`.
        PidGains {
            kp: 0.8,
            ki: 0.3,
            kd: 0.05,
        }
    }
}

/// A digital LDO: code in `0..=max_code` maps linearly onto
/// `[v_min, v_max]`, with a PID controller that steps the code.
///
/// # Example
///
/// ```
/// use blitzcoin_power::{Ldo, PidGains};
///
/// let mut ldo = Ldo::new(0.5, 1.0, 255, PidGains::default());
/// assert_eq!(ldo.voltage(), 0.5); // starts at the lowest setting
/// ldo.set_code(255);
/// assert_eq!(ldo.voltage(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ldo {
    v_min: f64,
    v_max: f64,
    max_code: u32,
    code: u32,
    gains: PidGains,
    integral: f64,
    prev_error: f64,
    updates: u64,
}

impl Ldo {
    /// Creates an LDO spanning `[v_min, v_max]` with codes `0..=max_code`.
    ///
    /// # Panics
    /// Panics if `v_max <= v_min` or `max_code == 0`.
    pub fn new(v_min: f64, v_max: f64, max_code: u32, gains: PidGains) -> Self {
        assert!(v_max > v_min, "LDO voltage range must be non-empty");
        assert!(max_code > 0, "LDO needs at least two codes");
        Ldo {
            v_min,
            v_max,
            max_code,
            code: 0,
            gains,
            integral: 0.0,
            prev_error: 0.0,
            updates: 0,
        }
    }

    /// The current digital code.
    pub fn code(&self) -> u32 {
        self.code
    }

    /// The largest valid code.
    pub fn max_code(&self) -> u32 {
        self.max_code
    }

    /// Directly sets the code (clamped), bypassing the controller. Used
    /// for initialization and by the centralized baselines, which command
    /// explicit settings.
    pub fn set_code(&mut self, code: u32) {
        self.code = code.min(self.max_code);
    }

    /// The output voltage for the current code.
    pub fn voltage(&self) -> f64 {
        self.voltage_for_code(self.code)
    }

    /// The output voltage for an arbitrary code (clamped).
    pub fn voltage_for_code(&self, code: u32) -> f64 {
        let code = code.min(self.max_code) as f64;
        self.v_min + (self.v_max - self.v_min) * code / self.max_code as f64
    }

    /// The closest code producing at least voltage `v`.
    pub fn code_for_voltage(&self, v: f64) -> u32 {
        let v = v.clamp(self.v_min, self.v_max);
        let frac = (v - self.v_min) / (self.v_max - self.v_min);
        (frac * self.max_code as f64).ceil() as u32
    }

    /// One PID controller update: `error` is `target_code - measured_code`
    /// in TDC counts; the controller steps the LDO code. Returns the new
    /// code.
    pub fn pid_update(&mut self, error: f64) -> u32 {
        self.integral += error;
        // Anti-windup: keep the integral within what the actuator can act on.
        let span = self.max_code as f64;
        self.integral = self.integral.clamp(
            -span / self.gains.ki.max(1e-9),
            span / self.gains.ki.max(1e-9),
        );
        let derivative = error - self.prev_error;
        self.prev_error = error;
        let delta =
            self.gains.kp * error + self.gains.ki * self.integral + self.gains.kd * derivative;
        let new_code = (self.code as f64 + delta).round().clamp(0.0, span) as u32;
        self.code = new_code;
        self.updates += 1;
        new_code
    }

    /// Resets the controller state (integral and derivative history).
    pub fn reset_controller(&mut self) {
        self.integral = 0.0;
        self.prev_error = 0.0;
    }

    /// Number of controller updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Minimum output voltage.
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Maximum output voltage.
    pub fn v_max(&self) -> f64 {
        self.v_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ldo() -> Ldo {
        Ldo::new(0.5, 1.0, 255, PidGains::default())
    }

    #[test]
    fn code_voltage_mapping() {
        let mut l = ldo();
        assert_eq!(l.voltage(), 0.5);
        l.set_code(255);
        assert_eq!(l.voltage(), 1.0);
        l.set_code(1000); // clamped
        assert_eq!(l.code(), 255);
        assert!((l.voltage_for_code(127) - 0.749).abs() < 0.002);
    }

    #[test]
    fn code_for_voltage_ceils() {
        let l = ldo();
        let code = l.code_for_voltage(0.75);
        assert!(l.voltage_for_code(code) >= 0.75);
        assert!(l.voltage_for_code(code.saturating_sub(1)) < 0.75);
        assert_eq!(l.code_for_voltage(0.0), 0);
        assert_eq!(l.code_for_voltage(2.0), 255);
    }

    #[test]
    fn pid_moves_toward_positive_error() {
        let mut l = ldo();
        l.set_code(100);
        let c1 = l.pid_update(10.0);
        assert!(c1 > 100, "positive error (target above measured) raises V");
        let mut l2 = ldo();
        l2.set_code(100);
        let c2 = l2.pid_update(-10.0);
        assert!(c2 < 100, "negative error lowers V");
    }

    #[test]
    fn pid_is_stationary_at_zero_error() {
        let mut l = ldo();
        l.set_code(128);
        for _ in 0..10 {
            l.pid_update(0.0);
        }
        assert_eq!(l.code(), 128);
        assert_eq!(l.updates(), 10);
    }

    #[test]
    fn pid_clamps_at_rails() {
        let mut l = ldo();
        for _ in 0..100 {
            l.pid_update(1e6);
        }
        assert_eq!(l.code(), 255);
        l.reset_controller();
        for _ in 0..100 {
            l.pid_update(-1e6);
        }
        assert_eq!(l.code(), 0);
    }

    #[test]
    fn reset_controller_clears_history() {
        let mut l = ldo();
        l.pid_update(50.0);
        l.reset_controller();
        l.set_code(128);
        for _ in 0..5 {
            l.pid_update(0.0);
        }
        assert_eq!(l.code(), 128, "no residual integral action after reset");
    }

    #[test]
    #[should_panic(expected = "range")]
    fn bad_range_panics() {
        Ldo::new(1.0, 0.5, 255, PidGains::default());
    }
}
