//! Voltage-frequency characterization curves.
//!
//! Each accelerator tile is pre-characterized with the maximum frequency it
//! sustains at each supply voltage (Fig 13 of the paper). The UVFR design
//! exploits the monotonicity of this relation: the free-running ring
//! oscillator acts as a critical-path replica, so for any tile voltage it
//! produces (approximately) the tile's F_max at that voltage, and the
//! control loop can regulate frequency by moving voltage alone.

/// A strictly monotone piecewise-linear voltage↔frequency curve.
///
/// Units: volts and megahertz.
///
/// # Example
///
/// ```
/// use blitzcoin_power::VfCurve;
///
/// let c = VfCurve::linear(0.5, 1.0, 200.0, 800.0);
/// assert_eq!(c.freq_at(0.75), 500.0);
/// assert_eq!(c.voltage_for(500.0), 0.75);
/// // out-of-range inputs clamp to the characterized corners
/// assert_eq!(c.freq_at(2.0), 800.0);
/// assert_eq!(c.voltage_for(0.0), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfCurve {
    /// `(voltage, frequency)` corners, strictly increasing in both fields.
    points: Vec<(f64, f64)>,
}

impl VfCurve {
    /// Builds a curve from characterized `(voltage, frequency)` corners.
    ///
    /// # Panics
    /// Panics if fewer than two corners are given or if the corners are not
    /// strictly increasing in both voltage and frequency.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "a V-F curve needs at least two corners");
        for w in points.windows(2) {
            assert!(
                w[1].0 > w[0].0 && w[1].1 > w[0].1,
                "V-F corners must be strictly increasing in V and F"
            );
        }
        assert!(
            points[0].0 > 0.0 && points[0].1 > 0.0,
            "voltages and frequencies must be positive"
        );
        VfCurve { points }
    }

    /// Builds a two-corner linear curve from `(v_min, f_min)` to
    /// `(v_max, f_max)`.
    pub fn linear(v_min: f64, v_max: f64, f_min: f64, f_max: f64) -> Self {
        VfCurve::new(vec![(v_min, f_min), (v_max, f_max)])
    }

    /// Minimum characterized voltage.
    pub fn v_min(&self) -> f64 {
        self.points[0].0
    }

    /// Maximum characterized voltage.
    pub fn v_max(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Frequency at the minimum voltage.
    pub fn f_min(&self) -> f64 {
        self.points[0].1
    }

    /// Frequency at the maximum voltage.
    pub fn f_max(&self) -> f64 {
        self.points[self.points.len() - 1].1
    }

    /// The characterized corners.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Maximum sustainable frequency at voltage `v` (clamped to the
    /// characterized range).
    pub fn freq_at(&self, v: f64) -> f64 {
        let v = v.clamp(self.v_min(), self.v_max());
        for w in self.points.windows(2) {
            let ((v0, f0), (v1, f1)) = (w[0], w[1]);
            if v <= v1 {
                return f0 + (f1 - f0) * (v - v0) / (v1 - v0);
            }
        }
        self.f_max()
    }

    /// Minimum voltage needed to sustain frequency `f` (clamped to the
    /// characterized range).
    pub fn voltage_for(&self, f: f64) -> f64 {
        let f = f.clamp(self.f_min(), self.f_max());
        for w in self.points.windows(2) {
            let ((v0, f0), (v1, f1)) = (w[0], w[1]);
            if f <= f1 {
                return v0 + (v1 - v0) * (f - f0) / (f1 - f0);
            }
        }
        self.v_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolation_and_inverse() {
        let c = VfCurve::linear(0.6, 0.9, 300.0, 600.0);
        assert_eq!(c.freq_at(0.6), 300.0);
        assert_eq!(c.freq_at(0.9), 600.0);
        assert!((c.freq_at(0.75) - 450.0).abs() < 1e-9);
        for f in [300.0, 400.0, 555.5, 600.0] {
            let v = c.voltage_for(f);
            assert!((c.freq_at(v) - f).abs() < 1e-9, "round trip at {f}");
        }
    }

    #[test]
    fn multi_segment_curve() {
        let c = VfCurve::new(vec![(0.5, 100.0), (0.7, 400.0), (1.0, 800.0)]);
        assert!((c.freq_at(0.6) - 250.0).abs() < 1e-9);
        assert!((c.freq_at(0.85) - 600.0).abs() < 1e-9);
        assert!((c.voltage_for(250.0) - 0.6).abs() < 1e-9);
        assert!((c.voltage_for(600.0) - 0.85).abs() < 1e-9);
    }

    #[test]
    fn clamping_at_corners() {
        let c = VfCurve::linear(0.5, 1.0, 200.0, 800.0);
        assert_eq!(c.freq_at(0.1), 200.0);
        assert_eq!(c.freq_at(1.5), 800.0);
        assert_eq!(c.voltage_for(1.0), 0.5);
        assert_eq!(c.voltage_for(10_000.0), 1.0);
    }

    #[test]
    fn accessors() {
        let c = VfCurve::linear(0.5, 1.0, 200.0, 800.0);
        assert_eq!(c.v_min(), 0.5);
        assert_eq!(c.v_max(), 1.0);
        assert_eq!(c.f_min(), 200.0);
        assert_eq!(c.f_max(), 800.0);
        assert_eq!(c.points().len(), 2);
    }

    #[test]
    fn monotone_everywhere() {
        let c = VfCurve::new(vec![(0.5, 100.0), (0.7, 400.0), (1.0, 800.0)]);
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = 0.5 + 0.5 * i as f64 / 100.0;
            let f = c.freq_at(v);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_corners_panic() {
        VfCurve::new(vec![(0.5, 200.0), (0.7, 150.0)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_corner_panics() {
        VfCurve::new(vec![(0.5, 200.0)]);
    }
}
