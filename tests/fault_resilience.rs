//! Property tests for the fault-injection subsystem: whatever a seeded
//! [`FaultPlan`] throws at the system, the coin economy must conserve
//! budget, exchanges with dead partners must time out rather than
//! deadlock, and the survivors must keep converging.
//!
//! Properties run on the seeded harness in `blitzcoin_sim::check`: each
//! case derives an independent RNG from a fixed root seed, so failures
//! reproduce exactly and name the case to replay.

use blitzcoin_core::emulator::{Emulator, EmulatorConfig};
use blitzcoin_noc::Topology;
use blitzcoin_sim::check::forall;
use blitzcoin_sim::{ensure, FaultPlan, LinkOutage, SimRng, TileFault, TileFaultKind};
use blitzcoin_soc::prelude::*;

/// A random but *bounded* fault plan for the 3x3 SoC: lossy planes,
/// delayed hops, jittered messages, one flaky link, and possibly one
/// scheduled tile fault of either kind anywhere on the die.
fn any_plan(rng: &mut SimRng) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: rng.next_u64(),
        ..FaultPlan::default()
    };
    if rng.chance(0.7) {
        plan.drop_prob = vec![rng.unit_f64() * 0.25];
    }
    if rng.chance(0.5) {
        plan.extra_hop_delay_max_cycles = rng.range_u64(0..8);
    }
    if rng.chance(0.5) {
        plan.msg_jitter_cycles = rng.range_u64(0..64);
    }
    if rng.chance(0.4) {
        let from = rng.range_u64(0..30_000);
        plan.outages.push(LinkOutage {
            a: rng.range_usize(0..9),
            b: rng.range_usize(0..9),
            from_cycle: from,
            until_cycle: from + rng.range_u64(1..20_000),
        });
    }
    if rng.chance(0.6) {
        plan.tile_faults.push(TileFault {
            tile: rng.range_usize(0..9),
            at_cycle: rng.range_u64(0..60_000),
            kind: if rng.chance(0.5) {
                TileFaultKind::FailStop
            } else {
                TileFaultKind::Stuck
            },
        });
    }
    plan
}

fn engine_run(plan: FaultPlan, seed: u64) -> SimReport {
    let soc = floorplan::soc_3x3();
    let wl = workload::av_parallel(&soc, 2);
    Simulation::new(soc, wl, SimConfig::new(ManagerKind::BlitzCoin, 120.0))
        .with_fault_plan(plan)
        .run(seed)
}

#[test]
fn engine_conserves_coins_under_any_fault_plan() {
    // The tentpole invariant: no combination of drops, outages, delays
    // and tile faults may leak or mint a single coin. The run's own
    // auditor computes the ledger; we assert its verdict.
    forall("engine fault conservation", 16, |rng| {
        let plan = any_plan(rng);
        let seed = rng.next_u64();
        let r = engine_run(plan.clone(), seed);
        ensure!(
            r.coins_leaked == 0,
            "leaked {} coins under {plan:?} (seed {seed})",
            r.coins_leaked
        );
        Ok(())
    });
}

#[test]
fn engine_never_deadlocks_on_a_dead_partner() {
    // Killing any tile mid-run must leave every exchange able to time
    // out and back off: the run always terminates with the workload
    // settled — every task either completed or abandoned with cause.
    forall("engine dead-partner liveness", 12, |rng| {
        let mut plan = FaultPlan::none();
        plan.tile_faults.push(TileFault {
            tile: rng.range_usize(0..9),
            at_cycle: rng.range_u64(0..40_000),
            kind: TileFaultKind::FailStop,
        });
        let r = engine_run(plan.clone(), rng.next_u64());
        ensure!(
            r.finished || r.tasks_abandoned > 0,
            "unsettled run under {plan:?}"
        );
        ensure!(r.coins_leaked == 0, "leaked {} coins", r.coins_leaked);
        Ok(())
    });
}

#[test]
fn engine_quarantines_stuck_tiles_without_leaking() {
    forall("engine stuck quarantine", 8, |rng| {
        let mut plan = FaultPlan::none();
        // Strike a managed accelerator early, while it still holds coins.
        let victims = [0usize, 1, 2, 4, 6, 7];
        plan.tile_faults.push(TileFault {
            tile: *rng.choose(&victims),
            at_cycle: rng.range_u64(1_000..20_000),
            kind: TileFaultKind::Stuck,
        });
        let r = engine_run(plan.clone(), rng.next_u64());
        ensure!(r.coins_leaked == 0, "leaked {} coins", r.coins_leaked);
        ensure!(
            r.coins_quarantined > 0,
            "a wedged accelerator must trap some budget: {plan:?}"
        );
        Ok(())
    });
}

#[test]
fn emulator_converges_after_a_single_fail_stop() {
    // The behavioural emulator's version of graceful degradation: kill
    // one arbitrary tile mid-diffusion and the survivors still reach the
    // error threshold, with the corpse fully drained and coins conserved.
    forall("emulator fail-stop convergence", 16, |rng| {
        let d = rng.range_usize(4..7);
        let topo = Topology::torus(d, d);
        let victim = rng.range_usize(0..d * d);
        let cfg = EmulatorConfig {
            stop_at_convergence: false,
            max_cycles: 400_000,
            quiescence_exchanges: 2_000,
            ..EmulatorConfig::default()
        };
        let mut emu = Emulator::new(topo, vec![32; d * d], cfg).with_fault_plan(FaultPlan {
            tile_faults: vec![TileFault {
                tile: victim,
                at_cycle: rng.range_u64(0..2_000),
                kind: TileFaultKind::FailStop,
            }],
            ..FaultPlan::default()
        });
        let mut run_rng = SimRng::seed(rng.next_u64());
        emu.init_uniform_random(&mut run_rng);
        let before = emu.total_coins();
        let r = emu.run(&mut run_rng);
        ensure!(r.converged, "survivors stuck on {d}x{d}: {r:?}");
        ensure!(
            emu.tiles()[victim].has == 0,
            "corpse still holds {} coins",
            emu.tiles()[victim].has
        );
        ensure!(
            emu.total_coins() == before,
            "coins {before} -> {}",
            emu.total_coins()
        );
        Ok(())
    });
}

#[test]
fn fault_decisions_replay_identically() {
    // Determinism is what makes every resilience figure reproducible:
    // the same plan and seed must yield bit-identical reports.
    let mut rng = SimRng::seed(0x5EED);
    let plan = any_plan(&mut rng);
    let a = engine_run(plan.clone(), 42);
    let b = engine_run(plan, 42);
    assert_eq!(a.coins_leaked, b.coins_leaked);
    assert_eq!(a.coins_reclaimed, b.coins_reclaimed);
    assert_eq!(a.tasks_abandoned, b.tasks_abandoned);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.events, b.events);
    assert_eq!(a.noc.total_dropped(), b.noc.total_dropped());
}
