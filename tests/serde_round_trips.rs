//! Serde round-trip tests for the public data structures (C-SERDE):
//! every type a downstream user might persist — configurations, reports,
//! traces, results — must survive JSON serialization unchanged.

use blitzcoin_core::emulator::{ConvergenceResult, EmulatorConfig};
use blitzcoin_core::{AllocationPolicy, DynamicTiming, PairingMode, TileState};
use blitzcoin_noc::{NetworkConfig, Packet, PacketKind, Plane, TileId, Topology};
use blitzcoin_power::{AcceleratorClass, PowerModel, UvfrConfig};
use blitzcoin_sim::{SimTime, StepTrace};
use blitzcoin_soc::prelude::*;
use blitzcoin_thermal::ThermalConfig;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn core_types_round_trip() {
    let tile = TileState::new(-3, 17);
    assert_eq!(round_trip(&tile), tile);
    let cfg = EmulatorConfig::default();
    assert_eq!(round_trip(&cfg), cfg);
    let dt = DynamicTiming::default();
    assert_eq!(round_trip(&dt), dt);
    let pm = PairingMode::ShiftRegister { period: 8 };
    assert_eq!(round_trip(&pm), pm);
    let pol = AllocationPolicy::RelativeProportional;
    assert_eq!(round_trip(&pol), pol);
    let result = ConvergenceResult {
        converged: true,
        cycles: 123,
        packets: 456,
        exchanges: 78,
        start_error: 3.5,
        final_error: 0.5,
        worst_error: 1.25,
        total_cycles: 200,
        total_packets: 500,
    };
    assert_eq!(round_trip(&result), result);
}

#[test]
fn noc_types_round_trip() {
    let topo = Topology::torus(5, 4);
    assert_eq!(round_trip(&topo), topo);
    let pkt = Packet::new(
        TileId(3),
        TileId(9),
        Plane::MmioIrq,
        PacketKind::CoinStatus { has: -2, max: 40 },
    );
    assert_eq!(round_trip(&pkt), pkt);
    let nc = NetworkConfig::default();
    assert_eq!(round_trip(&nc), nc);
}

#[test]
fn power_types_round_trip() {
    for class in AcceleratorClass::ALL {
        let model = PowerModel::of(class);
        let back = round_trip(&model);
        assert_eq!(back, model);
        // behavioural equality too, not just structural
        assert_eq!(back.power_at(400.0), model.power_at(400.0));
    }
    let uv = UvfrConfig::default();
    assert_eq!(round_trip(&uv), uv);
}

#[test]
fn trace_round_trip_preserves_semantics() {
    let mut tr = StepTrace::new("p");
    tr.record(SimTime::ZERO, 10.0);
    tr.record(SimTime::from_us(3), 25.0);
    let back: StepTrace = round_trip(&tr);
    assert_eq!(back.value_at(SimTime::from_us(1)), 10.0);
    assert_eq!(back.value_at(SimTime::from_us(5)), 25.0);
    assert_eq!(
        back.average(SimTime::ZERO, SimTime::from_us(6)),
        tr.average(SimTime::ZERO, SimTime::from_us(6))
    );
}

#[test]
fn soc_config_and_report_round_trip() {
    let soc = floorplan::soc_3x3();
    assert_eq!(round_trip(&soc), soc);
    let cfg = SimConfig::new(ManagerKind::BlitzCoin, 120.0);
    assert_eq!(round_trip(&cfg), cfg);
    let th = ThermalConfig::default();
    assert_eq!(round_trip(&th), th);

    // a full report survives persistence: rerunning analysis on the
    // deserialized report gives identical numbers
    let wl = workload::av_parallel(&soc, 1);
    assert_eq!(round_trip(&wl), wl);
    let report = Simulation::new(soc.clone(), wl, cfg).run(5);
    let back: SimReport = round_trip(&report);
    assert_eq!(back.exec_time, report.exec_time);
    assert_eq!(back.responses, report.responses);
    assert_eq!(back.utilization(), report.utilization());
    let t1 = thermal::analyze(&soc, &report, ThermalConfig::default());
    let t2 = thermal::analyze(&soc, &back, ThermalConfig::default());
    assert_eq!(t1.peak, t2.peak);
}
