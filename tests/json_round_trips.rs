//! JSON round-trips for every public type the workspace persists:
//! configs, fault plans, results, traces. Uses the in-repo JSON layer in
//! `blitzcoin_sim::json` (the workspace builds fully offline, so there is
//! no serde here).

use blitzcoin_baselines::tokensmart::TsConfig;
use blitzcoin_core::emulator::{ConvergenceResult, EmulatorConfig, ExchangeMode};
use blitzcoin_core::{AllocationPolicy, DynamicTiming, HotspotCap, PairingMode, TileState};
use blitzcoin_exp::{Claim, FigResult};
use blitzcoin_noc::{NetworkConfig, TileId, Topology};
use blitzcoin_sim::fault::{FaultPlan, LinkOutage, TileFault, TileFaultKind};
use blitzcoin_sim::json::{FromJson, Json, ToJson};
use blitzcoin_sim::{SimTime, StepTrace};

/// Round-trips a value through pretty-printed JSON text and back.
fn round_trip<T>(value: &T) -> T
where
    T: ToJson + FromJson,
{
    let text = value.to_json().to_string_pretty();
    let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
    T::from_json(&parsed).unwrap_or_else(|e| panic!("decode failed: {e}\n{text}"))
}

#[test]
fn sim_time_round_trips() {
    for t in [
        SimTime::ZERO,
        SimTime::from_noc_cycles(7),
        SimTime::from_ms(400),
        SimTime::MAX,
    ] {
        assert_eq!(round_trip(&t), t);
    }
}

#[test]
fn step_trace_round_trips() {
    let mut tr = StepTrace::new("power_mw");
    tr.record(SimTime::ZERO, 10.0);
    tr.record(SimTime::from_us(1), 30.5);
    tr.record(SimTime::from_us(3), 0.25);
    let back = round_trip(&tr);
    assert_eq!(back.name(), tr.name());
    assert_eq!(back.value_at(SimTime::from_ns(500)), 10.0);
    assert_eq!(back.value_at(SimTime::from_us(2)), 30.5);
    assert_eq!(back.value_at(SimTime::from_us(9)), 0.25);
}

#[test]
fn tile_state_round_trips() {
    for t in [TileState::new(17, 32), TileState::new(-3, 0)] {
        assert_eq!(round_trip(&t), t);
    }
}

#[test]
fn emulator_config_round_trips() {
    let configs = [
        EmulatorConfig::default(),
        EmulatorConfig::plain_one_way(),
        EmulatorConfig::plain_four_way(),
        EmulatorConfig {
            mode: ExchangeMode::FourWay,
            dynamic_timing: Some(DynamicTiming {
                lambda: 4.0,
                ..DynamicTiming::default()
            }),
            pairing: PairingMode::Uniform { period: 8 },
            hotspot_cap: Some(HotspotCap::new(200)),
            latency_jitter_cycles: 32,
            ..EmulatorConfig::default()
        },
    ];
    for cfg in configs {
        assert_eq!(round_trip(&cfg), cfg);
    }
}

#[test]
fn pairing_mode_round_trips() {
    for p in [
        PairingMode::Disabled,
        PairingMode::Uniform { period: 4 },
        PairingMode::ShiftRegister { period: 16 },
    ] {
        assert_eq!(round_trip(&p), p);
    }
    assert!(PairingMode::from_json(&Json::parse(r#"{"kind":"Nope"}"#).unwrap()).is_err());
}

#[test]
fn allocation_policy_round_trips() {
    for p in [
        AllocationPolicy::AbsoluteProportional,
        AllocationPolicy::RelativeProportional,
    ] {
        assert_eq!(round_trip(&p), p);
    }
}

#[test]
fn convergence_result_round_trips() {
    let r = ConvergenceResult {
        converged: true,
        cycles: 1234,
        packets: 567,
        exchanges: 89,
        start_error: 5.25,
        final_error: 0.75,
        worst_error: 1.5,
        total_cycles: 2000,
        total_packets: 600,
    };
    assert_eq!(round_trip(&r), r);
}

#[test]
fn topology_round_trips() {
    for t in [
        Topology::mesh(3, 5),
        Topology::torus(6, 6),
        Topology::square(1, false),
    ] {
        assert_eq!(round_trip(&t), t);
    }
    assert_eq!(round_trip(&TileId(42)), TileId(42));
}

#[test]
fn network_config_round_trips() {
    let cfg = NetworkConfig {
        hop_cycles: 2,
        inject_cycles: 3,
        eject_cycles: 1,
        contention: false,
    };
    assert_eq!(round_trip(&cfg), cfg);
    assert_eq!(
        round_trip(&NetworkConfig::default()),
        NetworkConfig::default()
    );
}

#[test]
fn ts_config_round_trips() {
    assert_eq!(round_trip(&TsConfig::default()), TsConfig::default());
}

#[test]
fn fault_plan_round_trips() {
    let plan = FaultPlan {
        seed: 0xDEAD_BEEF_CAFE,
        drop_prob: vec![0.01, 0.0, 0.25],
        extra_hop_delay_max_cycles: 3,
        msg_jitter_cycles: 64,
        outages: vec![LinkOutage {
            a: 0,
            b: 1,
            from_cycle: 10,
            until_cycle: 99,
        }],
        tile_faults: vec![
            TileFault {
                tile: 4,
                at_cycle: 5_000,
                kind: TileFaultKind::FailStop,
            },
            TileFault {
                tile: 2,
                at_cycle: 1_000,
                kind: TileFaultKind::Stuck,
            },
        ],
    };
    assert_eq!(round_trip(&plan), plan);
    assert_eq!(round_trip(&FaultPlan::none()), FaultPlan::none());
    assert_eq!(
        round_trip(&FaultPlan::from_jitter(8)),
        FaultPlan::from_jitter(8)
    );
}

#[test]
fn experiment_results_round_trip() {
    let mut r = FigResult::new("fig17", "Response time vs N");
    r.claim("fig17.slope", "O(N) for C-RR", "O(N) measured", true);
    r.claim("fig17.flat", "O(1) for BC", "flat measured", true);
    r.outputs.push("results/fig17.csv".to_string());
    let back = round_trip(&r);
    assert_eq!(back.id, r.id);
    assert_eq!(back.title, r.title);
    assert_eq!(back.outputs, r.outputs);
    assert_eq!(back.claims.len(), 2);
    assert_eq!(back.claims[0].id, "fig17.slope");
    assert!(back.all_hold());

    let c = Claim::new("x", "p", "m", false);
    let back = round_trip(&c);
    assert_eq!(back.id, "x");
    assert!(!back.holds);
}

#[test]
fn manifest_shape_matches_cli_output() {
    // The CLI writes Vec<FigResult> as the manifest; decoding a handmade
    // manifest keeps the format stable.
    let text = r#"[
      {"id": "fig1", "title": "T", "claims": [
        {"id": "a", "paper": "p", "measured": "m", "holds": true}
      ], "outputs": ["results/fig1.csv"], "wall_ms": 12.5, "jobs": 4,
      "oracle_violations": 0, "tie_break": "fifo",
      "cache_hits": 3, "cache_misses": 2, "cache_saved_ms": 7.25}
    ]"#;
    let results: Vec<FigResult> = Vec::from_json(&Json::parse(text).unwrap()).unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].claims[0].id, "a");
    assert_eq!(results[0].wall_ms, 12.5);
    assert_eq!(results[0].jobs, 4);
    assert_eq!(results[0].oracle_violations, 0);
    assert_eq!(results[0].cache_hits, 3);
    assert_eq!(results[0].cache_misses, 2);
    assert_eq!(results[0].cache_saved_ms, 7.25);
}
