//! Property tests for the runtime invariant oracle
//! (`blitzcoin_sim::oracle`): across random SoC configurations and every
//! fault-plan variant, the continuously audited invariants — coin
//! conservation at each exchange commit, the budget ceiling at each
//! actuation, VF legality, event-time monotonicity — must record zero
//! violations; and a deliberately injected, self-cancelling conservation
//! bug must be *caught*, with a replay line naming the invariant, even
//! though the end-of-run ledger balances perfectly.
//!
//! Properties run on the seeded harness in `blitzcoin_sim::check`: each
//! case derives an independent RNG from a fixed root seed, so failures
//! reproduce exactly and name the case to replay.

use blitzcoin_core::emulator::{Emulator, EmulatorConfig, ExchangeMode};
use blitzcoin_noc::Topology;
use blitzcoin_sim::check::forall;
use blitzcoin_sim::{ensure, FaultPlan, LinkOutage, SimRng, TileFault, TileFaultKind};
use blitzcoin_soc::prelude::*;

/// A random fault plan touching every [`FaultPlan`] dial: lossy planes,
/// delayed hops, jittered messages, link outages, and scheduled tile
/// faults of both kinds.
fn any_plan(rng: &mut SimRng, n_tiles: usize) -> FaultPlan {
    let mut plan = FaultPlan {
        seed: rng.next_u64(),
        ..FaultPlan::default()
    };
    if rng.chance(0.6) {
        plan.drop_prob = vec![rng.unit_f64() * 0.2];
    }
    if rng.chance(0.5) {
        plan.extra_hop_delay_max_cycles = rng.range_u64(0..8);
    }
    if rng.chance(0.5) {
        plan.msg_jitter_cycles = rng.range_u64(0..64);
    }
    if rng.chance(0.4) {
        let from = rng.range_u64(0..30_000);
        plan.outages.push(LinkOutage {
            a: rng.range_usize(0..n_tiles),
            b: rng.range_usize(0..n_tiles),
            from_cycle: from,
            until_cycle: from + rng.range_u64(1..20_000),
        });
    }
    if rng.chance(0.7) {
        plan.tile_faults.push(TileFault {
            tile: rng.range_usize(0..n_tiles),
            at_cycle: rng.range_u64(0..60_000),
            kind: if rng.chance(0.5) {
                TileFaultKind::FailStop
            } else {
                TileFaultKind::Stuck
            },
        });
    }
    plan
}

const MANAGERS: [ManagerKind; 6] = [
    ManagerKind::BlitzCoin,
    ManagerKind::BcCentralized,
    ManagerKind::CentralizedRoundRobin,
    ManagerKind::TokenSmart,
    ManagerKind::PriceTheory,
    ManagerKind::Static,
];

#[test]
fn engine_oracle_is_clean_across_random_socs() {
    // Any floorplan, budget, manager, and workload shape: the run's own
    // oracle (conservation at every commit, ceiling at every actuation,
    // VF legality, time monotonicity) must stay silent.
    forall("engine oracle clean on random SoCs", 12, |rng| {
        let four_by_four = rng.chance(0.3);
        let (soc, budget) = if four_by_four {
            (floorplan::soc_4x4(), 400.0 + rng.unit_f64() * 500.0)
        } else {
            (floorplan::soc_3x3(), 55.0 + rng.unit_f64() * 110.0)
        };
        let frames = rng.range_usize(1..3);
        let dep = rng.chance(0.5);
        let wl = match (four_by_four, dep) {
            (false, false) => workload::av_parallel(&soc, frames),
            (false, true) => workload::av_dependent(&soc, frames),
            (true, false) => workload::vision_parallel(&soc, frames),
            (true, true) => workload::vision_dependent(&soc, frames),
        };
        let manager = *rng.choose(&MANAGERS);
        let seed = rng.next_u64();
        let r = Simulation::new(soc, wl, SimConfig::new(manager, budget)).run(seed);
        ensure!(
            r.oracle_violations == 0,
            "{manager} at {budget:.0} mW (seed {seed:#x}): {}",
            r.oracle_first.unwrap_or_default()
        );
        Ok(())
    });
}

#[test]
fn engine_oracle_is_clean_under_every_fault_plan_variant() {
    // Faults drain, quarantine, drop, delay, and jitter — none of which
    // may break conservation, the ceiling, or time monotonicity. The
    // continuous oracle must agree with the end-of-run ledger audit.
    forall("engine oracle clean under faults", 12, |rng| {
        let soc = floorplan::soc_3x3();
        let plan = any_plan(rng, 9);
        let wl = workload::av_parallel(&soc, 2);
        let seed = rng.next_u64();
        let r = Simulation::new(soc, wl, SimConfig::new(ManagerKind::BlitzCoin, 120.0))
            .with_fault_plan(plan.clone())
            .run(seed);
        ensure!(
            r.oracle_violations == 0,
            "oracle fired under {plan:?} (seed {seed:#x}): {}",
            r.oracle_first.unwrap_or_default()
        );
        ensure!(r.coins_leaked == 0, "leaked {} coins", r.coins_leaked);
        Ok(())
    });
}

#[test]
fn tokensmart_oracle_is_clean_even_when_the_ring_breaks() {
    // TokenSmart's conservation story is harder than BlitzCoin's: coins
    // travel *outside* tile ledgers in the circulating pool, and a fault
    // can trap that pool mid-transit forever. The per-visit conservation
    // audit (ledger + pool) and the end-of-run leak check must both stay
    // silent under every fault-plan variant, including plans that
    // provably break the ring.
    forall("tokensmart oracle clean under ring faults", 12, |rng| {
        let soc = floorplan::soc_3x3();
        let mut plan = any_plan(rng, 9);
        if rng.chance(0.6) {
            // aim squarely at a ring stop so the token lands on a corpse
            plan.tile_faults.push(TileFault {
                tile: *rng.choose(&[0usize, 1, 2, 4, 6, 7]),
                at_cycle: rng.range_u64(0..40_000),
                kind: if rng.chance(0.5) {
                    TileFaultKind::FailStop
                } else {
                    TileFaultKind::Stuck
                },
            });
        }
        let wl = workload::av_parallel(&soc, 2);
        let seed = rng.next_u64();
        let r = Simulation::new(soc, wl, SimConfig::new(ManagerKind::TokenSmart, 120.0))
            .with_fault_plan(plan.clone())
            .run(seed);
        ensure!(
            r.oracle_violations == 0,
            "TS oracle fired under {plan:?} (seed {seed:#x}): {}",
            r.oracle_first.unwrap_or_default()
        );
        ensure!(r.coins_leaked == 0, "TS leaked {} coins", r.coins_leaked);
        // the end-of-run audit already binds ledger + trapped pool to the
        // initial total (owns_coin_economy), so leaked == 0 covers the
        // broken-ring case: the trapped pool is counted, not minted away
        Ok(())
    });
}

#[test]
fn price_theory_oracle_is_clean_even_when_the_supervisor_dies() {
    // Price Theory concentrates each cluster's session state in one
    // supervisor and moves coins through an escrow that lives outside
    // tile ledgers while grants are in flight. Killing the supervisor —
    // on top of any random fault plan — must hand the market to a member
    // watchdog without tripping the per-commit conservation audit or
    // leaking the escrow.
    forall(
        "price theory oracle clean under supervisor death",
        12,
        |rng| {
            let soc = floorplan::soc_3x3();
            let mut plan = any_plan(rng, 9);
            if rng.chance(0.6) {
                // aim squarely at the boot-elected supervisor (the first
                // managed tile) so the takeover path runs, not just the
                // member-reclaim path
                plan.tile_faults.push(TileFault {
                    tile: 0,
                    at_cycle: rng.range_u64(0..40_000),
                    kind: if rng.chance(0.5) {
                        TileFaultKind::FailStop
                    } else {
                        TileFaultKind::Stuck
                    },
                });
            }
            let wl = workload::av_parallel(&soc, 2);
            let seed = rng.next_u64();
            let r = Simulation::new(soc, wl, SimConfig::new(ManagerKind::PriceTheory, 120.0))
                .with_fault_plan(plan.clone())
                .run(seed);
            ensure!(
                r.oracle_violations == 0,
                "PT oracle fired under {plan:?} (seed {seed:#x}): {}",
                r.oracle_first.unwrap_or_default()
            );
            ensure!(r.coins_leaked == 0, "PT leaked {} coins", r.coins_leaked);
            // owns_coin_economy binds ledgers + escrow to the initial total,
            // so leaked == 0 covers the mid-grant takeover: in-flight escrow
            // is inherited or quarantined, never minted away
            Ok(())
        },
    );
}

#[test]
fn emulator_oracle_conserves_for_both_exchange_modes() {
    // The behavioural emulator audits the total coin ledger after every
    // exchange step; any topology, mode, initial distribution, and fault
    // plan must keep it exact.
    forall("emulator oracle conservation", 20, |rng| {
        let d = rng.range_usize(3..7);
        let topo = if rng.chance(0.5) {
            Topology::mesh(d, d)
        } else {
            Topology::torus(d, d)
        };
        let cfg = EmulatorConfig {
            mode: if rng.chance(0.5) {
                ExchangeMode::OneWay
            } else {
                ExchangeMode::FourWay
            },
            stop_at_convergence: false,
            max_cycles: 150_000,
            quiescence_exchanges: 1_500,
            ..EmulatorConfig::default()
        };
        let mut emu =
            Emulator::new(topo, vec![32; d * d], cfg).with_fault_plan(any_plan(rng, d * d));
        emu.init_uniform_random(rng);
        let before = emu.total_coins();
        emu.run(rng);
        ensure!(
            emu.oracle().count() == 0,
            "emulator oracle fired: {}",
            emu.oracle().first_replay_line().unwrap_or_default()
        );
        ensure!(
            emu.total_coins() == before,
            "total drifted {} -> {}",
            before,
            emu.total_coins()
        );
        Ok(())
    });
}

#[test]
fn injected_conservation_bug_is_caught_with_replay_line() {
    // The proof the auditing is *continuous*: mint one coin mid-run and
    // burn it on the next commit. The end-of-run ledger balances — the
    // CoinAudit sees nothing — so only the per-commit oracle can catch
    // the transient, and its first violation must carry a well-formed
    // replay line.
    let soc = floorplan::soc_3x3();
    let wl = workload::av_parallel(&soc, 2);
    let r = Simulation::new(soc, wl, SimConfig::new(ManagerKind::BlitzCoin, 120.0))
        .with_conservation_bug(5_000)
        .run(7);
    assert!(
        r.oracle_violations > 0,
        "the oracle must catch the injected mint/burn"
    );
    assert_eq!(
        r.coins_leaked, 0,
        "the bug self-cancels: the end-of-run audit must stay blind to it"
    );
    let line = r.oracle_first.expect("first violation kept");
    assert!(
        line.contains("invariant `coin-conservation` violated at cycle"),
        "replay line must name the invariant and cycle: {line}"
    );
    assert!(
        line.contains("replay with blitzcoin-soc Simulation::run at seed"),
        "replay line must say how to reproduce: {line}"
    );
}

#[test]
fn healthy_run_reports_zero_violations_in_its_report() {
    // The field experiments assert on: a clean run carries an explicit
    // zero and no replay line.
    let soc = floorplan::soc_3x3();
    let wl = workload::av_parallel(&soc, 2);
    let r = Simulation::new(soc, wl, SimConfig::new(ManagerKind::BlitzCoin, 120.0)).run(7);
    assert_eq!(r.oracle_violations, 0);
    assert!(r.oracle_first.is_none());
}
