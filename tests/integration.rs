//! End-to-end integration tests spanning all crates: the experiment
//! harness, the full-SoC simulator, the behavioural emulator and the
//! analytical model working together.

use blitzcoin_exp::{run_experiment, Ctx, ALL_EXPERIMENTS};
use blitzcoin_soc::prelude::*;

fn ctx() -> Ctx {
    let dir = std::env::temp_dir().join(format!("blitzcoin_it_{}", std::process::id()));
    Ctx::quick_into(dir)
}

#[test]
fn every_experiment_runs_in_quick_mode() {
    // The cheap experiments run here; the heavy SoC ones have their own
    // dedicated tests below so failures localize.
    let ctx = ctx();
    for id in ["fig1", "fig2", "fig5", "fig13"] {
        let r = run_experiment(id, &ctx);
        assert!(!r.claims.is_empty(), "{id} produced no claims");
        assert!(!r.outputs.is_empty() || id == "fig1", "{id} wrote no data");
    }
}

#[test]
fn experiment_catalogue_dispatches() {
    // Every catalogued id must dispatch without panicking on the *name*
    // (run only the cheapest to keep CI fast; the full set runs in the
    // harness binary).
    assert_eq!(ALL_EXPERIMENTS.len(), 29);
    let ctx = ctx();
    let r = run_experiment("fig2", &ctx);
    assert_eq!(r.id, "fig2");
}

#[test]
fn emulator_claims_hold_in_quick_mode() {
    let ctx = ctx();
    for id in ["fig3", "fig6"] {
        let r = run_experiment(id, &ctx);
        assert!(r.all_hold(), "{id} claims failed:\n{}", r.render());
    }
}

#[test]
fn soc_figure_17_claims_hold_in_quick_mode() {
    let ctx = ctx();
    let r = run_experiment("fig17", &ctx);
    assert!(r.all_hold(), "fig17 claims failed:\n{}", r.render());
}

#[test]
fn full_soc_managers_agree_on_work_done() {
    // Every manager must execute the same workload to completion; only
    // the timing differs. This exercises floorplan + workload + engine +
    // power + noc together.
    let soc = floorplan::soc_3x3();
    let mut times = Vec::new();
    for m in ManagerKind::ALL {
        let wl = workload::av_dependent(&soc, 2);
        let r = Simulation::new(soc.clone(), wl, SimConfig::new(m, 120.0)).run(3);
        assert!(r.finished, "{m} did not finish");
        times.push((m, r.exec_time_us()));
    }
    // decentralized BC must be the fastest or tied within 1%
    let bc = times[0].1;
    for &(m, t) in &times[1..] {
        assert!(bc <= t * 1.01, "BC ({bc}) slower than {m} ({t})");
    }
}

#[test]
fn scaling_model_consumes_simulation_measurements() {
    use blitzcoin_scaling::{Strategy, TauFit};
    // measure BC response at two SoC sizes, then fit and extrapolate
    let mut points = Vec::new();
    for (soc, n) in [(floorplan::soc_3x3(), 6usize), (floorplan::soc_4x4(), 13)] {
        let wl = if n == 6 {
            workload::av_parallel(&soc, 2)
        } else {
            workload::vision_parallel(&soc, 2)
        };
        let budget = soc.total_p_max() * 0.3;
        let r = Simulation::new(soc, wl, SimConfig::new(ManagerKind::BlitzCoin, budget)).run(9);
        let resp = r
            .mean_nontrivial_response_us(0.05)
            .expect("responses measured");
        points.push((n, resp));
    }
    let fit = TauFit::fit(Strategy::BlitzCoin, &points);
    assert!(fit.tau_us > 0.0);
    // the fitted model must support hundreds of accelerators at ms scale
    assert!(fit.n_max(10_000.0) > 100.0, "tau={}", fit.tau_us);
}

#[test]
fn random_dag_stress_runs_to_completion() {
    // a tangled 60-task random DAG on the 4x4 SoC must complete under
    // every manager, with the budget still enforced
    let soc = floorplan::soc_4x4();
    let wl = workload::random_dag(&soc, 60, 99);
    for m in [ManagerKind::BlitzCoin, ManagerKind::CentralizedRoundRobin] {
        let r = Simulation::new(soc.clone(), wl.clone(), SimConfig::new(m, 450.0)).run(1);
        assert!(r.finished, "{m} did not finish the random DAG");
        assert!(
            r.peak_overshoot_mw() <= 0.15 * r.budget_mw,
            "{m} violated the cap by {:.1} mW",
            r.peak_overshoot_mw()
        );
    }
}

#[test]
fn mini_era_runs_under_blitzcoin() {
    let soc = floorplan::soc_3x3();
    let wl = workload::mini_era(&soc, 3, 7);
    let r = Simulation::new(soc, wl, SimConfig::new(ManagerKind::BlitzCoin, 90.0)).run(4);
    assert!(r.finished);
    // jittered sensor frames keep perturbing the allocation
    assert!(
        r.responses.len() >= 4,
        "expected many transitions, got {}",
        r.responses.len()
    );
    assert!(r.utilization() > 0.3);
}

#[test]
fn thermal_envelope_of_paper_workloads() {
    use blitzcoin_thermal::ThermalConfig;
    let soc = floorplan::soc_3x3();
    let wl = workload::av_parallel(&soc, 2);
    let r = Simulation::new(
        soc.clone(),
        wl,
        SimConfig::new(ManagerKind::BlitzCoin, 120.0),
    )
    .run(2);
    let t = thermal::analyze(&soc, &r, ThermalConfig::default());
    assert!(t.max_celsius() < 105.0);
    assert!(t.hotspots(105.0).is_empty());
}

#[test]
fn deterministic_experiment_outputs() {
    let dir_a = std::env::temp_dir().join(format!("blitzcoin_det_a_{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("blitzcoin_det_b_{}", std::process::id()));
    let a = run_experiment("fig2", &Ctx::quick_into(&dir_a));
    let b = run_experiment("fig2", &Ctx::quick_into(&dir_b));
    let read = |dir: &std::path::Path| {
        std::fs::read_to_string(dir.join("fig02_exchange_step.csv")).expect("csv written")
    };
    assert_eq!(read(&dir_a), read(&dir_b));
    assert_eq!(a.claims.len(), b.claims.len());
}
