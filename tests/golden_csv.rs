//! Golden-CSV regression lock for the scheme-as-policy refactor.
//!
//! Quick-mode experiment CSVs for the four pre-refactor managers were
//! captured at their fixed seeds before `engine.rs` was split behind the
//! `ManagerPolicy` trait; the post-refactor engine must reproduce them
//! byte for byte, at `--jobs 1` and `--jobs 8` alike. TokenSmart's and
//! Price Theory's engine-level results deliberately live in *separate*
//! CSV files so these stay frozen; those files (and the six-scheme
//! shoot-out matrix) are locked here too, against their own goldens.
//!
//! Regenerate (only for an intentional result change, with the deviation
//! recorded in CHANGES.md) with:
//! `BLITZCOIN_BLESS=1 cargo test -p blitzcoin-exp --test golden_csv`

use std::fs;
use std::path::{Path, PathBuf};

use blitzcoin_exp::{run_experiment, Ctx};

/// (experiment id, csv files it writes that are locked here)
const LOCKED: [(&str, &[&str]); 3] = [
    ("fig17", &["fig17_soc3x3.csv", "fig17_soc3x3_pt.csv"]),
    (
        "resilience",
        &[
            "resilience.csv",
            "resilience_tokensmart.csv",
            "resilience_pt.csv",
        ],
    ),
    ("shootout", &["shootout.csv"]),
];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn run_quick_into(dir: &Path, jobs: usize) {
    fs::create_dir_all(dir).expect("create output dir");
    let ctx = Ctx {
        out_dir: dir.to_path_buf(),
        quick: true,
        jobs,
        ..Ctx::default()
    };
    for (id, _) in LOCKED {
        run_experiment(id, &ctx);
    }
}

#[test]
fn quick_mode_csvs_byte_identical_to_pre_refactor_goldens() {
    let golden = golden_dir();
    let base = std::env::temp_dir().join(format!("bc_golden_csv_{}", std::process::id()));
    for jobs in [1usize, 8] {
        let dir = base.join(format!("jobs{jobs}"));
        run_quick_into(&dir, jobs);
        for (_, files) in LOCKED {
            for name in files.iter().copied() {
                let got = fs::read(dir.join(name)).expect("experiment wrote the locked csv");
                let gold_path = golden.join(name);
                if jobs == 1 && std::env::var_os("BLITZCOIN_BLESS").is_some() {
                    fs::create_dir_all(&golden).unwrap();
                    fs::write(&gold_path, &got).unwrap();
                    continue;
                }
                let want =
                    fs::read(&gold_path).expect("golden csv missing; bless with BLITZCOIN_BLESS=1");
                assert_eq!(
                    got, want,
                    "{name} at --jobs {jobs} drifted from the pre-refactor golden"
                );
            }
        }
    }
    let _ = fs::remove_dir_all(&base);
}
