//! The paper's headline quantitative claims, asserted end-to-end against
//! the reproduction (shape/direction, with generous bands — see
//! EXPERIMENTS.md for exact measured values).

use blitzcoin_baselines::tokensmart::{TokenSmart, TsConfig};
use blitzcoin_core::emulator::EmulatorConfig;
use blitzcoin_core::montecarlo::run_homogeneous_trials;
use blitzcoin_noc::Topology;
use blitzcoin_scaling::paper;
use blitzcoin_sim::SimRng;
use blitzcoin_soc::prelude::*;

/// Abstract (§I): "8x to 12x lower response times ... compared to
/// state-of-the-art centralized power-management strategies."
#[test]
fn headline_response_time_improvement() {
    let soc = floorplan::soc_3x3();
    let run = |m| {
        let wl = workload::av_parallel(&soc, 2);
        Simulation::new(soc.clone(), wl, SimConfig::new(m, 120.0)).run(5)
    };
    let bc = run(ManagerKind::BlitzCoin);
    let crr = run(ManagerKind::CentralizedRoundRobin);
    let bc_resp = bc.mean_nontrivial_response_us(0.05).expect("bc responses");
    let crr_resp = crr.mean_response_us().expect("crr responses");
    let ratio = crr_resp / bc_resp;
    assert!(
        ratio > 5.0,
        "expected order-of-magnitude response improvement, got {ratio:.1}x ({bc_resp:.2} vs {crr_resp:.2} us)"
    );
}

/// Abstract: "25%-34% throughput improvement" vs centralized baselines.
#[test]
fn headline_throughput_improvement() {
    let soc = floorplan::soc_3x3();
    let run = |m| {
        let wl = workload::av_parallel(&soc, 3);
        Simulation::new(soc.clone(), wl, SimConfig::new(m, 120.0)).run(5)
    };
    let bc = run(ManagerKind::BlitzCoin);
    let crr = run(ManagerKind::CentralizedRoundRobin);
    let gain = (bc.speedup_vs(&crr) - 1.0) * 100.0;
    assert!(
        gain > 15.0,
        "expected >15% throughput gain vs C-RR, got {gain:.0}%"
    );
}

/// §III-B/Fig 3: decentralized convergence scales ~sqrt(N).
#[test]
fn convergence_scales_sublinearly() {
    let t = |d: usize| {
        run_homogeneous_trials(Topology::torus(d, d), EmulatorConfig::default(), 10, 77).mean_cycles
    };
    let (t6, t12) = (t(6), t(12));
    // N grows 4x; sqrt(N) scaling predicts ~2x; O(N) would be 4x.
    assert!(
        t12 / t6 < 3.0,
        "expected sublinear scaling: t6={t6:.0}, t12={t12:.0}"
    );
}

/// §III-C/Fig 4: BlitzCoin converges much faster than TokenSmart's
/// sequential ring at N=144.
#[test]
fn bc_beats_tokensmart() {
    let d = 12;
    let bc = run_homogeneous_trials(
        Topology::torus(d, d),
        EmulatorConfig {
            err_threshold: 1.5,
            ..EmulatorConfig::default()
        },
        10,
        31,
    )
    .mean_cycles;
    let mut ts_total = 0.0;
    for s in 0..10 {
        let mut rng = SimRng::seed(1000 + s);
        let mut ts = TokenSmart::new(
            vec![32; d * d],
            (32 * d * d) as u64,
            TsConfig {
                err_threshold: 1.5,
                ..TsConfig::default()
            },
        );
        ts.init_uniform_random(&mut rng);
        ts_total += ts.run(&mut rng).cycles as f64;
    }
    let ts_mean = ts_total / 10.0;
    assert!(
        ts_mean / bc > 3.0,
        "expected BC much faster than TS: bc={bc:.0}, ts={ts_mean:.0}"
    );
}

/// §VI-C/Fig 19: budget enforcement with high utilization, and the
/// throughput gain over static allocation.
#[test]
fn silicon_style_budget_enforcement_and_static_gain() {
    let soc = floorplan::soc_6x6();
    let budget = soc.total_p_max() * 0.33;
    let wl = workload::pm_cluster(&soc, 2, 7);
    let bc = Simulation::new(
        soc.clone(),
        wl.clone(),
        SimConfig::new(ManagerKind::BlitzCoin, budget),
    )
    .run(5);
    let st = Simulation::new(soc, wl, SimConfig::new(ManagerKind::Static, budget)).run(5);
    assert!(bc.finished && st.finished);
    assert!(
        bc.utilization() > 0.75 && bc.utilization() <= 1.02,
        "utilization {:.2}",
        bc.utilization()
    );
    assert!(
        bc.peak_overshoot_mw() <= 0.1 * budget,
        "cap violated by {:.1} mW",
        bc.peak_overshoot_mw()
    );
    let gain = (st.exec_time_us() / bc.exec_time_us() - 1.0) * 100.0;
    assert!(
        gain > 10.0,
        "expected a large gain vs static, got {gain:.0}%"
    );
}

/// §VI-D/Fig 21: the paper's fitted constants support the headline
/// "7x to 13x larger SoCs" scalability claim.
#[test]
fn scalability_claim_from_paper_constants() {
    for t_w_us in [500.0, 2_000.0, 10_000.0] {
        let r = paper::bc().n_max(t_w_us) / paper::crr().n_max(t_w_us);
        assert!(
            (4.0..20.0).contains(&r),
            "N_max ratio at T_w={t_w_us}: {r:.1}"
        );
    }
}

/// §VI-A: the RP allocation beats AP.
#[test]
fn rp_allocation_beats_ap() {
    let soc = floorplan::soc_3x3();
    let run = |policy| {
        let wl = workload::av_parallel(&soc, 2);
        let mut cfg = SimConfig::new(ManagerKind::BlitzCoin, 90.0);
        cfg.policy = policy;
        Simulation::new(soc.clone(), wl, cfg).run(5)
    };
    let rp = run(AllocationPolicy::RelativeProportional);
    let ap = run(AllocationPolicy::AbsoluteProportional);
    assert!(
        rp.exec_time_us() < ap.exec_time_us(),
        "RP {:.0} us should beat AP {:.0} us",
        rp.exec_time_us(),
        ap.exec_time_us()
    );
}

/// §IV-A: 64 power levels per tile — far finer than the 2-5 of prior work.
#[test]
fn dvfs_granularity() {
    use blitzcoin_power::{AcceleratorClass, CoinLut, PowerModel};
    let m = PowerModel::of(AcceleratorClass::Fft);
    let lut = CoinLut::build(&m, 50.0 / 63.0, 64);
    // count distinct non-idle frequency levels
    let mut levels: Vec<u64> = lut
        .entries()
        .iter()
        .filter(|&&f| f > 0.0)
        .map(|&f| (f * 10.0) as u64)
        .collect();
    levels.sort_unstable();
    levels.dedup();
    assert!(
        levels.len() >= 32,
        "expected tens of levels, got {}",
        levels.len()
    );
}
