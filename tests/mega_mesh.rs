//! Mega-mesh integration gate: a full 16x16 (256-tile) BlitzCoin run —
//! the smallest mega-mesh the `mega-mesh` experiment measures — must
//! complete with zero runtime-oracle invariant violations, in both the
//! global-domain and quadtree-federated shapes. Debug/test builds audit
//! continuously, and the CI oracle leg repeats this in release with
//! `--features oracle`, so the scaling claims rest on audited runs.

use blitzcoin_soc::prelude::*;

fn mega_run(hier: bool) -> SimReport {
    let mm = floorplan::mega_mesh(16);
    let wl = workload::parallel_all(&mm.soc, 2);
    let cfg = SimConfig::for_large_soc(
        ManagerKind::BlitzCoin,
        mm.soc.total_p_max() * 0.3,
        mm.soc.n_managed(),
    );
    let sim = if hier {
        Simulation::with_clusters(mm.soc, wl, cfg, mm.clusters)
    } else {
        Simulation::new(mm.soc, wl, cfg)
    };
    sim.run(0xB11C)
}

#[test]
fn mega_mesh_16x16_runs_with_zero_oracle_violations() {
    for hier in [false, true] {
        let before = blitzcoin_sim::oracle::violations_total();
        let r = mega_run(hier);
        assert_eq!(
            blitzcoin_sim::oracle::violations_total() - before,
            0,
            "hier={hier}: oracle invariant fired on the 16x16 mega-mesh"
        );
        assert!(r.exec_time_us() > 0.0, "hier={hier}");
        let resp = r.mean_nontrivial_response_us(0.05);
        assert!(
            resp.is_some_and(|us| us.is_finite() && us > 0.0),
            "hier={hier}: no measurable response on 252 managed tiles"
        );
        assert!(
            !r.activity_changes.is_empty(),
            "hier={hier}: the workload never changed activity"
        );
    }
}
