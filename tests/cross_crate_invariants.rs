//! Property-based invariants spanning the core data structures: coin
//! conservation, error monotonicity, allocation fairness, routing
//! correctness, LUT/power-model consistency, budget enforcement.
//!
//! Properties run on the seeded harness in `blitzcoin_sim::check`: each
//! case derives an independent RNG from a fixed root seed, so failures
//! reproduce exactly and name the case to replay.

use blitzcoin_baselines::BccController;
use blitzcoin_core::emulator::{Emulator, EmulatorConfig};
use blitzcoin_core::exchange::pairwise_exchange_stochastic;
use blitzcoin_core::{
    four_way_allocation, global_error, pairwise_exchange, AllocationPolicy, DynamicTiming,
    TileState,
};
use blitzcoin_noc::{TileId, Topology};
use blitzcoin_power::{AcceleratorClass, CoinLut, PowerModel};
use blitzcoin_sim::check::forall;
use blitzcoin_sim::{ensure, SimRng};

fn any_tile(rng: &mut SimRng) -> TileState {
    TileState::new(rng.range_i64(-16..128), rng.range_u64(0..64))
}

fn any_tiles(rng: &mut SimRng, count: std::ops::Range<usize>) -> Vec<TileState> {
    let n = rng.range_usize(count);
    (0..n).map(|_| any_tile(rng)).collect()
}

#[test]
fn pairwise_exchange_conserves_coins() {
    forall("pairwise conservation", 256, |rng| {
        let (a, b) = (any_tile(rng), any_tile(rng));
        let out = pairwise_exchange(a, b);
        ensure!(
            out.new_i + out.new_j == a.has + b.has,
            "{a:?} + {b:?} -> {out:?}"
        );
        Ok(())
    });
}

#[test]
fn pairwise_exchange_never_increases_error() {
    // Section III-E: per exchange, the pair error is constant or
    // decreases, up to half-coin rounding.
    forall("pairwise error monotone", 256, |rng| {
        let (a, b) = (any_tile(rng), any_tile(rng));
        let before = global_error(&[a, b]);
        let out = pairwise_exchange(a, b);
        let after = global_error(&[
            TileState::new(out.new_i, a.max),
            TileState::new(out.new_j, b.max),
        ]);
        ensure!(after <= before + 0.5, "{before} -> {after} for {a:?},{b:?}");
        Ok(())
    });
}

#[test]
fn stochastic_exchange_conserves_too() {
    forall("stochastic conservation", 256, |rng| {
        let (a, b) = (any_tile(rng), any_tile(rng));
        let mut tie_rng = SimRng::seed(rng.next_u64());
        let out = pairwise_exchange_stochastic(a, b, &mut tie_rng);
        ensure!(
            out.new_i + out.new_j == a.has + b.has,
            "{a:?} + {b:?} -> {out:?}"
        );
        Ok(())
    });
}

#[test]
fn four_way_allocation_conserves_and_bounds_error() {
    forall("four-way fairness", 256, |rng| {
        let tiles = any_tiles(rng, 2..6);
        let alloc = four_way_allocation(&tiles);
        let total_before: i64 = tiles.iter().map(|t| t.has).sum();
        ensure!(
            alloc.iter().sum::<i64>() == total_before,
            "total changed: {tiles:?} -> {alloc:?}"
        );
        let weight: u64 = tiles.iter().map(|t| t.max).sum();
        if weight > 0 {
            let alpha = total_before as f64 / weight as f64;
            for (a, t) in alloc.iter().zip(&tiles) {
                if t.max > 0 {
                    ensure!(
                        (*a as f64 - alpha * t.max as f64).abs() <= 1.0 + 1e-9,
                        "alloc {a} far from target {} in {tiles:?}",
                        alpha * t.max as f64
                    );
                }
            }
        }
        Ok(())
    });
}

#[test]
fn four_way_allocation_is_deterministic() {
    forall("four-way determinism", 256, |rng| {
        let tiles = any_tiles(rng, 2..6);
        ensure!(four_way_allocation(&tiles) == four_way_allocation(&tiles));
        Ok(())
    });
}

#[test]
fn analysis_bounds_hold_for_all_exchanges() {
    forall("exchange analysis bounds", 256, |rng| {
        let (a, b) = (any_tile(rng), any_tile(rng));
        let alpha = 2.0 * rng.unit_f64();
        let res = blitzcoin_core::analyze_exchange(a, b, alpha);
        ensure!(res.bound_holds(), "{res:?}");
        Ok(())
    });
}

#[test]
fn bcc_allocation_matches_totals() {
    forall("bcc totals", 256, |rng| {
        let n = rng.range_usize(1..20);
        let maxes: Vec<u64> = (0..n).map(|_| rng.range_u64(0..64)).collect();
        let pool = rng.range_u64(0..512);
        let alloc = BccController::new(pool).allocate(&maxes);
        if maxes.iter().sum::<u64>() > 0 {
            ensure!(
                alloc.iter().sum::<i64>() == pool as i64,
                "pool {pool} not conserved for {maxes:?}"
            );
        } else {
            ensure!(alloc.iter().all(|&a| a == 0));
        }
        Ok(())
    });
}

#[test]
fn xy_routing_reaches_destination() {
    forall("xy routing", 256, |rng| {
        let w = rng.range_usize(1..12);
        let h = rng.range_usize(1..12);
        let topo = Topology::mesh(w, h);
        let src = TileId(rng.range_usize(0..topo.len()));
        let dst = TileId(rng.range_usize(0..topo.len()));
        let route = topo.xy_route(src, dst);
        ensure!(
            route.len() == topo.hop_distance(src, dst),
            "route length {} vs distance {}",
            route.len(),
            topo.hop_distance(src, dst)
        );
        if src != dst {
            ensure!(*route.last().unwrap() == dst);
            // every hop is between physical neighbors
            let mut prev = src;
            for &next in &route {
                ensure!(
                    topo.hop_distance(prev, next) == 1,
                    "non-adjacent hop {prev:?} -> {next:?}"
                );
                prev = next;
            }
        }
        Ok(())
    });
}

#[test]
fn power_model_inverse_is_consistent() {
    forall("power model inverse", 256, |rng| {
        let class = *rng.choose(&AcceleratorClass::ALL);
        let m = PowerModel::of(class);
        let budget = m.power_floor() + rng.unit_f64() * (m.p_max() - m.power_floor());
        let f = m.freq_for_power(budget);
        ensure!(
            m.power_at(f) <= budget + 1e-6,
            "power {} over budget {budget} for {class:?}",
            m.power_at(f)
        );
        ensure!(f >= m.f_floor() && f <= m.f_max());
        Ok(())
    });
}

#[test]
fn lut_is_monotone_and_within_budget() {
    forall("lut monotone", 64, |rng| {
        let class = *rng.choose(&AcceleratorClass::ALL);
        let m = PowerModel::of(class);
        let coin_value = 0.5 + 7.5 * rng.unit_f64();
        let lut = CoinLut::build(&m, coin_value, 64);
        for k in 0..64i32 {
            ensure!(
                lut.f_target(k + 1) >= lut.f_target(k),
                "not monotone at {k}"
            );
            let f = lut.f_target(k);
            if f > 0.0 {
                ensure!(
                    m.power_at(f) <= k as f64 * coin_value + 1e-6,
                    "{class:?} over budget at {k} coins"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn policy_targets_fit_register() {
    forall("policy register fit", 256, |rng| {
        let n = rng.range_usize(1..20);
        let powers: Vec<f64> = (0..n)
            .map(|_| {
                if rng.chance(0.15) {
                    0.0
                } else {
                    500.0 * rng.unit_f64()
                }
            })
            .collect();
        for policy in [
            AllocationPolicy::AbsoluteProportional,
            AllocationPolicy::RelativeProportional,
        ] {
            let m = policy.assign_max(&powers, 63);
            ensure!(m.iter().all(|&x| x <= 63));
            for (target, p) in m.iter().zip(&powers) {
                ensure!(
                    (*p == 0.0) == (*target == 0),
                    "inactive iff zero power: p={p}, target={target}"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn dynamic_timing_stays_in_bounds() {
    forall("dynamic timing bounds", 256, |rng| {
        let dt = DynamicTiming::default();
        let mut interval = dt.base_cycles;
        let steps = rng.range_usize(1..64);
        for _ in 0..steps {
            let moved = rng.range_i64(0..5);
            interval = dt.next_interval(interval, moved);
            ensure!(
                interval >= dt.min_cycles && interval <= dt.max_cycles,
                "interval {interval} escaped [{}, {}]",
                dt.min_cycles,
                dt.max_cycles
            );
        }
        Ok(())
    });
}

// Heavier cases: fewer iterations.

#[test]
fn emulator_conserves_coins_for_any_grid() {
    forall("emulator conservation", 24, |rng| {
        let d = rng.range_usize(2..8);
        let topo = Topology::torus(d, d);
        let mut emu = Emulator::new(topo, vec![32; d * d], EmulatorConfig::default());
        let mut run_rng = SimRng::seed(rng.next_u64());
        emu.init_uniform_random(&mut run_rng);
        let before: i64 = emu.total_coins();
        let _ = emu.run(&mut run_rng);
        ensure!(
            emu.total_coins() == before,
            "coins {before} -> {} on {d}x{d}",
            emu.total_coins()
        );
        Ok(())
    });
}

#[test]
fn emulator_error_never_ends_above_start() {
    forall("emulator error bound", 24, |rng| {
        let d = rng.range_usize(3..7);
        let topo = Topology::torus(d, d);
        let mut emu = Emulator::new(topo, vec![32; d * d], EmulatorConfig::default());
        let mut run_rng = SimRng::seed(rng.next_u64());
        emu.init_uniform_random(&mut run_rng);
        let r = emu.run(&mut run_rng);
        ensure!(
            r.final_error <= r.start_error + 1.0,
            "error {} -> {}",
            r.start_error,
            r.final_error
        );
        Ok(())
    });
}
