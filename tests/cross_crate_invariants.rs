//! Property-based invariants spanning the core data structures: coin
//! conservation, error monotonicity, allocation fairness, routing
//! correctness, LUT/power-model consistency, budget enforcement.

use blitzcoin_baselines::BccController;
use blitzcoin_core::emulator::{Emulator, EmulatorConfig};
use blitzcoin_core::exchange::pairwise_exchange_stochastic;
use blitzcoin_core::{
    four_way_allocation, global_error, pairwise_exchange, AllocationPolicy, DynamicTiming,
    TileState,
};
use blitzcoin_noc::{Topology, TileId};
use blitzcoin_power::{AcceleratorClass, CoinLut, PowerModel};
use blitzcoin_sim::SimRng;
use proptest::prelude::*;

fn tile_strategy() -> impl Strategy<Value = TileState> {
    (-16i64..128, 0u64..64).prop_map(|(has, max)| TileState::new(has, max))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pairwise_exchange_conserves_coins(a in tile_strategy(), b in tile_strategy()) {
        let out = pairwise_exchange(a, b);
        prop_assert_eq!(out.new_i + out.new_j, a.has + b.has);
    }

    #[test]
    fn pairwise_exchange_never_increases_error(a in tile_strategy(), b in tile_strategy()) {
        // Section III-E: per exchange, the pair error is constant or
        // decreases, up to half-coin rounding.
        let before = global_error(&[a, b]);
        let out = pairwise_exchange(a, b);
        let after = global_error(&[
            TileState::new(out.new_i, a.max),
            TileState::new(out.new_j, b.max),
        ]);
        prop_assert!(after <= before + 0.5, "{} -> {}", before, after);
    }

    #[test]
    fn stochastic_exchange_conserves_too(a in tile_strategy(), b in tile_strategy(), seed: u64) {
        let mut rng = SimRng::seed(seed);
        let out = pairwise_exchange_stochastic(a, b, &mut rng);
        prop_assert_eq!(out.new_i + out.new_j, a.has + b.has);
    }

    #[test]
    fn four_way_allocation_conserves_and_bounds_error(
        tiles in proptest::collection::vec(tile_strategy(), 2..6)
    ) {
        let alloc = four_way_allocation(&tiles);
        let total_before: i64 = tiles.iter().map(|t| t.has).sum();
        prop_assert_eq!(alloc.iter().sum::<i64>(), total_before);
        let weight: u64 = tiles.iter().map(|t| t.max).sum();
        if weight > 0 {
            let alpha = total_before as f64 / weight as f64;
            for (a, t) in alloc.iter().zip(&tiles) {
                if t.max > 0 {
                    prop_assert!((*a as f64 - alpha * t.max as f64).abs() <= 1.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn four_way_allocation_is_deterministic(
        tiles in proptest::collection::vec(tile_strategy(), 2..6)
    ) {
        prop_assert_eq!(four_way_allocation(&tiles), four_way_allocation(&tiles));
    }

    #[test]
    fn analysis_bounds_hold_for_all_exchanges(
        a in tile_strategy(), b in tile_strategy(), alpha in 0.0f64..2.0
    ) {
        let res = blitzcoin_core::analyze_exchange(a, b, alpha);
        prop_assert!(res.bound_holds(), "{:?}", res);
    }

    #[test]
    fn bcc_allocation_matches_totals(maxes in proptest::collection::vec(0u64..64, 1..20), pool in 0u64..512) {
        let alloc = BccController::new(pool).allocate(&maxes);
        if maxes.iter().sum::<u64>() > 0 {
            prop_assert_eq!(alloc.iter().sum::<i64>(), pool as i64);
        } else {
            prop_assert!(alloc.iter().all(|&a| a == 0));
        }
    }

    #[test]
    fn xy_routing_reaches_destination(w in 1usize..12, h in 1usize..12, s in 0usize..144, t in 0usize..144) {
        let topo = Topology::mesh(w, h);
        let src = TileId(s % topo.len());
        let dst = TileId(t % topo.len());
        let route = topo.xy_route(src, dst);
        prop_assert_eq!(route.len(), topo.hop_distance(src, dst));
        if src != dst {
            prop_assert_eq!(*route.last().unwrap(), dst);
            // every hop is between physical neighbors
            let mut prev = src;
            for &next in &route {
                prop_assert_eq!(topo.hop_distance(prev, next), 1);
                prev = next;
            }
        }
    }

    #[test]
    fn power_model_inverse_is_consistent(class_idx in 0usize..6, frac in 0.0f64..1.0) {
        let class = AcceleratorClass::ALL[class_idx];
        let m = PowerModel::of(class);
        let budget = m.power_floor() + frac * (m.p_max() - m.power_floor());
        let f = m.freq_for_power(budget);
        prop_assert!(m.power_at(f) <= budget + 1e-6);
        prop_assert!(f >= m.f_floor() && f <= m.f_max());
    }

    #[test]
    fn lut_is_monotone_and_within_budget(class_idx in 0usize..6, coin_value in 0.5f64..8.0) {
        let class = AcceleratorClass::ALL[class_idx];
        let m = PowerModel::of(class);
        let lut = CoinLut::build(&m, coin_value, 64);
        for k in 0..64i32 {
            prop_assert!(lut.f_target(k + 1) >= lut.f_target(k));
            let f = lut.f_target(k);
            if f > 0.0 {
                prop_assert!(m.power_at(f) <= k as f64 * coin_value + 1e-6);
            }
        }
    }

    #[test]
    fn policy_targets_fit_register(powers in proptest::collection::vec(0.0f64..500.0, 1..20)) {
        for policy in [AllocationPolicy::AbsoluteProportional, AllocationPolicy::RelativeProportional] {
            let m = policy.assign_max(&powers, 63);
            prop_assert!(m.iter().all(|&x| x <= 63));
            for (target, p) in m.iter().zip(&powers) {
                prop_assert_eq!(*p == 0.0, *target == 0, "inactive iff zero power");
            }
        }
    }

    #[test]
    fn dynamic_timing_stays_in_bounds(
        intervals in proptest::collection::vec(0i64..5, 1..64),
    ) {
        let dt = DynamicTiming::default();
        let mut interval = dt.base_cycles;
        for moved in intervals {
            interval = dt.next_interval(interval, moved);
            prop_assert!(interval >= dt.min_cycles && interval <= dt.max_cycles);
        }
    }
}

proptest! {
    // heavier cases: fewer iterations
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn emulator_conserves_coins_for_any_grid(d in 2usize..8, seed: u64) {
        let topo = Topology::torus(d, d);
        let mut emu = Emulator::new(topo, vec![32; d * d], EmulatorConfig::default());
        let mut rng = SimRng::seed(seed);
        emu.init_uniform_random(&mut rng);
        let before: i64 = emu.total_coins();
        let _ = emu.run(&mut rng);
        prop_assert_eq!(emu.total_coins(), before);
    }

    #[test]
    fn emulator_error_never_ends_above_start(d in 3usize..7, seed: u64) {
        let topo = Topology::torus(d, d);
        let mut emu = Emulator::new(topo, vec![32; d * d], EmulatorConfig::default());
        let mut rng = SimRng::seed(seed);
        emu.init_uniform_random(&mut rng);
        let r = emu.run(&mut rng);
        prop_assert!(r.final_error <= r.start_error + 1.0);
    }
}
