//! The sweep engine's central guarantee, checked end to end: experiment
//! output is bitwise independent of the executor's job count.
//!
//! Seeds derive from grid indices and results are collected in index
//! order, so a quick fixed-seed run of every figure family must produce
//! byte-identical CSVs at `jobs = 1` and `jobs = 8` — and the
//! Monte-Carlo runners must return exactly equal `TrialStats` either
//! way. Any scheduling leak (an RNG shared across units, a
//! completion-order collect) breaks these tests.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use blitzcoin_core::emulator::EmulatorConfig;
use blitzcoin_core::montecarlo::{run_activity_change_trials_with, run_homogeneous_trials_with};
use blitzcoin_exp::{run_experiment, Ctx, ALL_EXPERIMENTS};
use blitzcoin_noc::Topology;
use blitzcoin_sim::Executor;

fn run_all_quick_into(dir: &Path, jobs: usize) {
    fs::create_dir_all(dir).expect("create output dir");
    let ctx = Ctx {
        out_dir: dir.to_path_buf(),
        quick: true,
        jobs,
        ..Ctx::default()
    };
    for id in ALL_EXPERIMENTS {
        run_experiment(id, &ctx);
    }
}

fn csv_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read output dir") {
        let p = entry.expect("dir entry").path();
        if p.extension().is_some_and(|e| e == "csv") {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            out.insert(name, fs::read(&p).expect("read csv"));
        }
    }
    out
}

#[test]
fn quick_run_csvs_byte_identical_at_jobs_1_and_8() {
    let base: PathBuf = std::env::temp_dir().join(format!("bc_determinism_{}", std::process::id()));
    let serial_dir = base.join("jobs1");
    let parallel_dir = base.join("jobs8");
    run_all_quick_into(&serial_dir, 1);
    run_all_quick_into(&parallel_dir, 8);

    let serial = csv_bytes(&serial_dir);
    let parallel = csv_bytes(&parallel_dir);
    assert!(!serial.is_empty(), "quick run produced no CSVs");
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        parallel.keys().collect::<Vec<_>>(),
        "jobs=1 and jobs=8 runs wrote different file sets"
    );
    for (name, bytes) in &serial {
        assert!(
            bytes == &parallel[name],
            "CSV {name} differs between jobs=1 and jobs=8"
        );
    }
    fs::remove_dir_all(&base).ok();
}

#[test]
fn parallel_monte_carlo_equals_serial_exactly() {
    let topo = Topology::torus(6, 6);
    let cfg = EmulatorConfig::default();
    let serial = run_homogeneous_trials_with(&Executor::serial(), topo, cfg, 10, 99);
    let parallel = run_homogeneous_trials_with(&Executor::new(8), topo, cfg, 10, 99);
    assert_eq!(serial.results, parallel.results);
    assert_eq!(serial.mean_cycles, parallel.mean_cycles);
    assert_eq!(serial.mean_packets, parallel.mean_packets);

    let a_serial = run_activity_change_trials_with(&Executor::serial(), topo, cfg, 10, 99, 0.1);
    let a_parallel = run_activity_change_trials_with(&Executor::new(8), topo, cfg, 10, 99, 0.1);
    assert_eq!(a_serial.results, a_parallel.results);
}
