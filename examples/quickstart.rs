//! Quickstart: run the BlitzCoin coin-exchange algorithm on a 4x4 grid
//! and watch it converge.
//!
//! ```sh
//! cargo run --release -p blitzcoin-exp --example quickstart
//! ```

use blitzcoin_core::emulator::{Emulator, EmulatorConfig};
use blitzcoin_core::metrics::ConvergenceRatio;
use blitzcoin_noc::Topology;
use blitzcoin_sim::SimRng;

fn main() {
    // A 4x4 SoC with wrap-around neighbor links. Three tiles are inactive
    // (max = 0); the rest want budget proportional to their max targets.
    let topo = Topology::torus(4, 4);
    let max: Vec<u64> = vec![32, 16, 0, 32, 8, 32, 16, 0, 32, 8, 16, 32, 0, 16, 32, 8];

    let mut emu = Emulator::new(topo, max, EmulatorConfig::default());
    let mut rng = SimRng::seed(7);
    emu.init_uniform_random(&mut rng);

    println!("initial coin distribution:");
    print_grid(&emu);

    let result = emu.run(&mut rng);

    println!(
        "\nconverged: {} in {} NoC cycles ({} coin packets)",
        result.converged, result.cycles, result.packets
    );
    println!(
        "global error: {:.2} -> {:.2} coins/tile\n",
        result.start_error, result.final_error
    );
    println!("final coin distribution (target ratio alpha applied to each tile's max):");
    print_grid(&emu);

    let ratio = ConvergenceRatio::of(emu.tiles());
    if let Some(alpha) = ratio.alpha {
        println!("\nalpha = {alpha:.3}: every active tile holds ~alpha x max coins");
    }
}

fn print_grid(emu: &Emulator) {
    let topo = emu.topology();
    for y in 0..topo.height() {
        let row: Vec<String> = (0..topo.width())
            .map(|x| {
                let t = emu.tiles()[topo.tile(x, y).index()];
                format!("{:>2}/{:<2}", t.has, t.max)
            })
            .collect();
        println!("  {}", row.join("  "));
    }
}
