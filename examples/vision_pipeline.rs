//! The 4x4 computer-vision SoC running its dependent pipeline
//! (Vision pre-processing -> Conv2D layers -> GEMM dense layers) under
//! BlitzCoin, showing how the coin distribution follows the pipeline
//! stages as frames move through.
//!
//! ```sh
//! cargo run --release -p blitzcoin-exp --example vision_pipeline
//! ```

use blitzcoin_sim::SimTime;
use blitzcoin_soc::prelude::*;

fn main() {
    let soc = floorplan::soc_4x4();
    let wl = workload::vision_dependent(&soc, 3);
    println!(
        "4x4 CV SoC: {} accelerators, {} pipelined tasks, budget 450 mW (33%)\n",
        soc.n_managed(),
        wl.tasks().len()
    );

    let sim = Simulation::new(
        soc.clone(),
        wl,
        SimConfig::new(ManagerKind::BlitzCoin, 450.0),
    );
    println!(
        "coin economy: 1 coin = {:.2} mW, pool = {} coins\n",
        sim.coin_value_mw(),
        sim.pool()
    );
    let report = sim.run(11);

    println!(
        "pipeline finished in {:.1} us at {:.0}% budget utilization\n",
        report.exec_time_us(),
        report.utilization() * 100.0
    );

    // Track how the budget migrates between pipeline stages: sample each
    // managed tile's coins at a few checkpoints.
    let checkpoints = [0.1, 0.3, 0.5, 0.7, 0.9];
    println!("coin holdings per tile over the run (tile: class @ checkpoints):");
    for (slot, &tile) in report.managed_tiles.iter().enumerate() {
        let class = soc.tiles[tile]
            .accel_class()
            .expect("managed tiles are accelerators");
        let samples: Vec<String> = checkpoints
            .iter()
            .map(|&f| {
                let t = SimTime::from_us_f64(report.exec_time_us() * f);
                format!("{:>4.0}", report.coin_traces[slot].value_at(t))
            })
            .collect();
        println!("  tile {tile:>2} {class:>7}: {}", samples.join(" "));
    }

    println!(
        "\n{} power-management responses, mean {:.2} us, worst {:.2} us",
        report.responses.len(),
        report.mean_response_us().unwrap_or(0.0),
        report.max_response_us().unwrap_or(0.0)
    );
}
