//! Design-space exploration of BlitzCoin's configuration knobs, in the
//! spirit of Section III's study: sweep the dynamic-timing back-off
//! factor λ, the random-pairing period and the coin precision, and report
//! convergence time and packet cost for each point.
//!
//! ```sh
//! cargo run --release -p blitzcoin-exp --example design_space
//! ```

use blitzcoin_core::emulator::EmulatorConfig;
use blitzcoin_core::montecarlo::run_homogeneous_trials;
use blitzcoin_core::{DynamicTiming, PairingMode};
use blitzcoin_noc::Topology;

const D: usize = 12;
const TRIALS: u32 = 40;

fn main() {
    let topo = Topology::torus(D, D);
    println!("design-space exploration on a {D}x{D} torus ({TRIALS} trials/point)\n");

    println!("-- back-off factor lambda (dynamic timing)");
    println!("{:>8} {:>14} {:>14}", "lambda", "cycles", "packets");
    for lambda in [1.0, 1.5, 2.0, 4.0, 8.0] {
        let cfg = EmulatorConfig {
            dynamic_timing: Some(DynamicTiming {
                lambda,
                ..DynamicTiming::default()
            }),
            ..EmulatorConfig::default()
        };
        let s = run_homogeneous_trials(topo, cfg, TRIALS, 99);
        println!(
            "{lambda:>8.1} {:>14.0} {:>14.0}",
            s.mean_cycles, s.mean_packets
        );
    }

    println!("\n-- random-pairing period (exchanges between pairings)");
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "period", "cycles", "packets", "conv"
    );
    for period in [4u32, 8, 16, 32, 64] {
        let cfg = EmulatorConfig {
            pairing: PairingMode::ShiftRegister { period },
            ..EmulatorConfig::default()
        };
        let s = run_homogeneous_trials(topo, cfg, TRIALS, 99);
        println!(
            "{period:>8} {:>14.0} {:>14.0} {:>9.0}%",
            s.mean_cycles,
            s.mean_packets,
            s.converged_fraction * 100.0
        );
    }

    println!("\n-- base refresh interval (cycles)");
    println!("{:>8} {:>14} {:>14}", "refresh", "cycles", "packets");
    for refresh in [16u64, 32, 64, 128, 256] {
        let cfg = EmulatorConfig {
            refresh_cycles: refresh,
            dynamic_timing: Some(DynamicTiming {
                base_cycles: refresh,
                max_cycles: refresh * 16,
                ..DynamicTiming::default()
            }),
            ..EmulatorConfig::default()
        };
        let s = run_homogeneous_trials(topo, cfg, TRIALS, 99);
        println!(
            "{refresh:>8} {:>14.0} {:>14.0}",
            s.mean_cycles, s.mean_packets
        );
    }

    println!("\nInterpretation: the paper's defaults (lambda=2, pairing every 16");
    println!("exchanges, base refresh 64) sit at the knee of all three curves —");
    println!("faster settings buy little time but cost packets, slower ones");
    println!("stretch convergence.");
}
