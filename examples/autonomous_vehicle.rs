//! The paper's motivating workload: a connected-autonomous-vehicle
//! application (FFT depth estimation + Viterbi V2V decode + NVDLA object
//! detection) on the 3x3 SoC, run under every power manager at a 60 mW
//! budget with the dependent (WL-Dep) dataflow.
//!
//! ```sh
//! cargo run --release -p blitzcoin-exp --example autonomous_vehicle
//! ```

use blitzcoin_sim::SimTime;
use blitzcoin_soc::prelude::*;

fn main() {
    let soc = floorplan::soc_3x3();
    println!(
        "3x3 AV SoC: {} accelerators, sum P_max = {:.0} mW, budget 60 mW (15%)\n",
        soc.n_managed(),
        soc.total_p_max()
    );

    let mut reports = Vec::new();
    for manager in ManagerKind::ALL {
        let wl = workload::av_dependent(&soc, 4);
        let report = Simulation::new(soc.clone(), wl, SimConfig::new(manager, 60.0)).run(42);
        println!(
            "{manager:>7}: frames done in {:>7.1} us | mean response {} | utilization {:>4.0}% | peak {:.1} mW",
            report.exec_time_us(),
            report
                .mean_response_us()
                .map(|r| format!("{r:>6.2} us"))
                .unwrap_or_else(|| "   n/a   ".into()),
            report.utilization() * 100.0,
            report.peak_power_mw(),
        );
        reports.push((manager, report));
    }

    // Show the BlitzCoin run's power trace around the first NVDLA handoff.
    let (_, bc) = &reports[0];
    println!("\nBlitzCoin power trace (sampled every 50 us):");
    let step = SimTime::from_us(50);
    for p in bc.power.resample(SimTime::ZERO, bc.exec_time, step) {
        let bars = (p.value / 2.0).round() as usize;
        println!(
            "  {:>7.0} us | {:>5.1} mW {}",
            p.time.as_us_f64(),
            p.value,
            "#".repeat(bars)
        );
    }

    let crr = &reports
        .iter()
        .find(|(m, _)| *m == ManagerKind::CentralizedRoundRobin)
        .expect("C-RR ran")
        .1;
    println!(
        "\nBlitzCoin finishes {:.0}% faster than the centralized round-robin baseline.",
        (bc.speedup_vs(crr) - 1.0) * 100.0
    );
}
