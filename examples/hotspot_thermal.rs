//! Thermal extension demo: calibrate a hotspot coin cap from a junction
//! limit and watch it bound the die temperature when one greedy tile
//! tries to concentrate the whole budget.
//!
//! ```sh
//! cargo run --release -p blitzcoin-exp --example hotspot_thermal
//! ```

use blitzcoin_core::emulator::{Emulator, EmulatorConfig};
use blitzcoin_core::HotspotCap;
use blitzcoin_noc::Topology;
use blitzcoin_sim::{SimRng, SimTime, StepTrace};
use blitzcoin_thermal::{coin_cap_for_limit, ThermalConfig, ThermalModel};

const COIN_VALUE_MW: f64 = 2.0;
const POOL: u64 = 200; // 400 mW worth of coins
const LIMIT_C: f64 = 80.0;

fn main() {
    let topo = Topology::torus(5, 5);
    let thermal = ThermalConfig::default();
    let cap = coin_cap_for_limit(topo, thermal, LIMIT_C, COIN_VALUE_MW);
    println!(
        "junction limit {LIMIT_C} C at {COIN_VALUE_MW} mW/coin -> neighborhood cap of {cap} coins\n"
    );

    for (label, hotspot) in [("UNCAPPED", None), ("CAPPED", Some(HotspotCap::new(cap)))] {
        // only the center tile is active: the exchange wants to hand it
        // the entire pool
        let center = topo.tile(2, 2).index();
        let max: Vec<u64> = (0..25).map(|i| if i == center { 63 } else { 0 }).collect();
        let cfg = EmulatorConfig {
            hotspot_cap: hotspot,
            err_threshold: 0.25,
            stop_at_convergence: false,
            max_cycles: 400_000,
            quiescence_exchanges: 800,
            ..EmulatorConfig::default()
        };
        let mut emu = Emulator::new(topo, max, cfg);
        let mut rng = SimRng::seed(1);
        emu.init_random(&mut rng, POOL);
        emu.run(&mut rng);

        let powers: Vec<StepTrace> = emu
            .tiles()
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut tr = StepTrace::new(format!("p{i}"));
                tr.record(SimTime::ZERO, t.has.max(0) as f64 * COIN_VALUE_MW);
                tr
            })
            .collect();
        let refs: Vec<&StepTrace> = powers.iter().collect();
        let report = ThermalModel::new(topo, thermal).simulate(&refs, SimTime::from_ms(5));

        println!("{label}: center holds {} coins", emu.tiles()[center].has);
        println!("die temperatures (C):");
        for y in 0..5 {
            let row: Vec<String> = (0..5)
                .map(|x| format!("{:5.1}", report.peak_celsius(topo.tile(x, y).index())))
                .collect();
            println!("  {}", row.join(" "));
        }
        let status = if report.max_celsius() <= LIMIT_C + 0.5 {
            "within limit"
        } else {
            "LIMIT EXCEEDED"
        };
        println!(
            "peak {:.1} C vs limit {LIMIT_C} C -> {status}\n",
            report.max_celsius()
        );
    }
}
