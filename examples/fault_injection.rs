//! Fault injection: kill a tile mid-run and watch the survivors reclaim
//! its coins — first on the behavioural emulator, then on the full SoC.
//!
//! ```sh
//! cargo run --release -p blitzcoin-exp --example fault_injection
//! ```

use blitzcoin_core::emulator::{Emulator, EmulatorConfig};
use blitzcoin_noc::Topology;
use blitzcoin_sim::{FaultPlan, SimRng, TileFault, TileFaultKind};
use blitzcoin_soc::prelude::*;

fn main() {
    emulator_fail_stop();
    soc_fail_stop();
}

/// A 6x6 torus loses tile 10 at cycle 500. The corpse answers nothing,
/// so its neighbors drain it through the normal max = 0 rule and the
/// survivors re-converge — no coins lost, no deadlock.
fn emulator_fail_stop() {
    let topo = Topology::torus(6, 6);
    let plan = FaultPlan {
        seed: 11,
        drop_prob: vec![0.01],
        tile_faults: vec![TileFault {
            tile: 10,
            at_cycle: 500,
            kind: TileFaultKind::FailStop,
        }],
        ..FaultPlan::default()
    };
    let config = EmulatorConfig {
        stop_at_convergence: false,
        max_cycles: 200_000,
        quiescence_exchanges: 2_000,
        ..EmulatorConfig::default()
    };

    let mut emu = Emulator::new(topo, vec![32; 36], config).with_fault_plan(plan);
    let mut rng = SimRng::seed(3);
    emu.init_uniform_random(&mut rng);
    let before: i64 = emu.tiles().iter().map(|t| t.has).sum();

    let result = emu.run(&mut rng);

    let after: i64 = emu.tiles().iter().map(|t| t.has).sum();
    println!("emulator: 6x6 torus, tile 10 fail-stops at cycle 500");
    println!(
        "  survivors converged: {}; fault applied: {:?}",
        result.converged,
        emu.faulted()[10]
    );
    println!(
        "  corpse holds {} coins; {} total before, {} after (conserved: {})",
        emu.tiles()[10].has,
        before,
        after,
        before == after
    );
}

/// The AV SoC loses its NVDLA 30 us into a run under BlitzCoin. The
/// conservation auditor checks every coin is either held by a live tile,
/// quarantined in the corpse, or in flight — none leak.
fn soc_fail_stop() {
    let plan = FaultPlan {
        seed: 7,
        drop_prob: vec![0.02],
        extra_hop_delay_max_cycles: 4,
        tile_faults: vec![TileFault {
            tile: 4, // the NVDLA of the 3x3 AV floorplan
            at_cycle: 24_000,
            kind: TileFaultKind::FailStop,
        }],
        ..FaultPlan::default()
    };
    let soc = floorplan::soc_3x3();
    let wl = workload::av_parallel(&soc, 2);
    let report = Simulation::new(soc, wl, SimConfig::new(ManagerKind::BlitzCoin, 120.0))
        .with_fault_plan(plan)
        .run(42);

    println!("soc: 3x3 AV floorplan, NVDLA fail-stops at 30 us");
    println!(
        "  finished: {}; {:.1} us; {} coins reclaimed, {} leaked, {} tasks abandoned",
        report.finished,
        report.exec_time_us(),
        report.coins_reclaimed,
        report.coins_leaked,
        report.tasks_abandoned
    );
    if let Some(us) = report.recovery_us {
        println!("  budget recovered {us:.1} us after the fault");
    }
    assert_eq!(report.coins_leaked, 0, "conservation audit must hold");
}
