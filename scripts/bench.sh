#!/usr/bin/env sh
# Benchmark snapshot + host-drift-robust regression gate.
#
#   scripts/bench.sh [OUT] [BASELINE]   # snapshot to OUT, gate against BASELINE
#   scripts/bench.sh --gate-selftest    # exercise the gate math on synthetic JSON
#
# Runs the per-policy throughput bench and the kernel microbenchmarks in
# release mode and collects every reported metric into BENCH_10.json at
# the repo root (or the path given as $1). If BASELINE (default:
# BENCH_9.json) exists, the BC events/s regression gate runs afterwards.
#
# The gate is a same-run paired A/B: every snapshot also records
# `policy/host_reference`, a pinned pure-ALU kernel whose ns/iter depends
# only on the host, benched immediately before and after the policy runs
# in the same binary (mean of the two brackets; `kernel/host_reference`
# is the fallback for snapshots without it). The gate compares
# HOST-NORMALIZED throughput
#
#     (cur_bc / base_bc) * (cur_ref_ns / base_ref_ns) >= 0.90
#
# so a machine that is globally 15% slower today (thermal state, turbo,
# noisy neighbour) moves both factors oppositely and cancels out, while a
# true simulator regression moves only the first factor and still fails.
# BENCH_7's 0.86x-vs-BENCH_5 "regression" was exactly such host drift;
# baselines that predate the reference kernel (BENCH_5/BENCH_7) cannot be
# normalized, so the gate explicitly SKIPs rather than false-failing.
#
# The bench harness pins the sweep executor to one job, so the numbers
# measure the kernels rather than the machine's core count; the JSON
# records that alongside the git revision so snapshots from different
# checkouts stay comparable.
set -eu
cd "$(dirname "$0")/.."

GATE_FLOOR="0.90"

# metric FILE NAME -> prints the "value" of metric NAME in snapshot FILE,
# or nothing when absent. The snapshots are one-metric-per-line JSON
# written by this script, so a line-oriented extractor is exact.
metric() {
    awk -v name="\"$2\":" '
        index($0, name) {
            if (match($0, /"value": [-0-9.eE+]+/)) {
                print substr($0, RSTART + 9, RLENGTH - 9)
                exit
            }
        }
    ' "$1"
}

# host_ref FILE -> the host-reference ns/iter of a snapshot, preferring
# the policies-bench bracket (measured in the same binary, same time
# window as the gated numbers) over the kernels-bench fallback.
host_ref() {
    v=$(metric "$1" "policy/host_reference")
    [ -n "$v" ] || v=$(metric "$1" "kernel/host_reference")
    printf '%s' "$v"
}

# gate CUR BASE -> 0 pass, 1 fail, 0 with a warning when un-normalizable.
gate() {
    cur="$1" base="$2"
    cur_bc=$(metric "$cur" "policy/BC/events_per_sec")
    base_bc=$(metric "$base" "policy/BC/events_per_sec")
    cur_ref=$(host_ref "$cur")
    base_ref=$(host_ref "$base")
    if [ -z "$cur_bc" ] || [ -z "$base_bc" ]; then
        echo "bench gate: SKIP ($base or $cur lacks policy/BC/events_per_sec)"
        return 0
    fi
    if [ -z "$base_ref" ] || [ -z "$cur_ref" ]; then
        echo "bench gate: SKIP (no host_reference metric in $base -- a raw" \
             "cross-run comparison against it would gate on host speed drift," \
             "not on the code; re-snapshot with this script to arm the gate)"
        return 0
    fi
    ratio=$(awk -v cb="$cur_bc" -v bb="$base_bc" -v cr="$cur_ref" -v br="$base_ref" \
        'BEGIN { printf "%.4f", (cb / bb) * (cr / br) }')
    raw=$(awk -v cb="$cur_bc" -v bb="$base_bc" 'BEGIN { printf "%.4f", cb / bb }')
    host=$(awk -v cr="$cur_ref" -v br="$base_ref" 'BEGIN { printf "%.4f", br / cr }')
    echo "bench gate: BC events/s raw ${raw}x, host ${host}x baseline ->" \
         "normalized ${ratio}x (floor $GATE_FLOOR)"
    if awk -v r="$ratio" -v f="$GATE_FLOOR" 'BEGIN { exit !(r >= f) }'; then
        echo "bench gate: PASS"
        return 0
    fi
    echo "bench gate: FAIL -- host-normalized BC throughput ${ratio}x < $GATE_FLOOR" \
         "vs $base (this is a code regression, not machine drift)"
    return 1
}

# synth FILE BC REF [NAME] -> a minimal snapshot for the self-test; REF
# may be "-" to synthesize a pre-reference-kernel baseline like BENCH_7,
# and NAME overrides the reference metric name (default the bracketed
# policies one).
synth() {
    {
        printf '{\n  "metrics": {\n'
        printf '    "policy/BC/events_per_sec": { "value": %s, "unit": "events/s" }' "$2"
        if [ "$3" != "-" ]; then
            printf ',\n    "%s": { "value": %s, "unit": "ns/iter" }' \
                "${4:-policy/host_reference}" "$3"
        fi
        printf '\n  }\n}\n'
    } > "$1"
}

if [ "${1:-}" = "--gate-selftest" ]; then
    dir=$(mktemp -d)
    trap 'rm -rf "$dir"' EXIT
    synth "$dir/base.json" 5000000 1000
    fails=0

    # Host 15% slower, code unchanged: raw 0.85x would false-fail, the
    # normalized gate must pass (the BENCH_7-vs-BENCH_5 scenario).
    synth "$dir/drift.json" 4250000 1176.47
    gate "$dir/drift.json" "$dir/base.json" || { echo "selftest: drift case FAILED"; fails=1; }

    # Same host, code 20% slower: must fail.
    synth "$dir/regress.json" 4000000 1000
    if gate "$dir/regress.json" "$dir/base.json" > /dev/null; then
        echo "selftest: regression case NOT caught"
        fails=1
    fi

    # Host 15% slower AND code 20% slower: normalization must not mask
    # the true regression.
    synth "$dir/both.json" 3400000 1176.47
    if gate "$dir/both.json" "$dir/base.json" > /dev/null; then
        echo "selftest: drift+regression case NOT caught"
        fails=1
    fi

    # A snapshot carrying only the kernels-bench reference name (no
    # policies bracket) must still normalize via the fallback.
    synth "$dir/kern_base.json" 5000000 1000 kernel/host_reference
    synth "$dir/kern_drift.json" 4250000 1176.47 kernel/host_reference
    gate "$dir/kern_drift.json" "$dir/kern_base.json" > /dev/null \
        || { echo "selftest: kernel-name fallback case FAILED"; fails=1; }

    # Baseline without the reference kernel: must skip (exit 0), not fail.
    synth "$dir/old.json" 5000000 -
    synth "$dir/cur.json" 4000000 1000
    out=$(gate "$dir/cur.json" "$dir/old.json") || { echo "selftest: skip case errored"; fails=1; }
    case "$out" in
        *SKIP*) ;;
        *) echo "selftest: missing-reference case did not SKIP"; fails=1 ;;
    esac

    [ "$fails" -eq 0 ] && echo "bench gate selftest: all cases pass"
    exit "$fails"
fi

out="${1:-BENCH_10.json}"
baseline="${2:-BENCH_9.json}"
tsv=$(mktemp)
trap 'rm -f "$tsv"' EXIT

cargo build -q --release --offline -p blitzcoin-bench --benches

BLITZCOIN_BENCH_OUT="$tsv" cargo bench -q --offline -p blitzcoin-bench --bench policies
BLITZCOIN_BENCH_OUT="$tsv" cargo bench -q --offline -p blitzcoin-bench --bench kernels

rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

{
    printf '{\n'
    printf '  "bench": 10,\n'
    printf '  "git_rev": "%s",\n' "$rev"
    printf '  "jobs": 1,\n'
    printf '  "metrics": {\n'
    awk -F'\t' '
        { printf "%s    \"%s\": { \"value\": %s, \"unit\": \"%s\" }", sep, $1, $2, $3; sep = ",\n" }
        END { printf "\n" }
    ' "$tsv"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "bench: wrote $out ($(wc -l < "$tsv") metrics)"

if [ -f "$baseline" ] && [ "$baseline" != "$out" ]; then
    gate "$out" "$baseline"
else
    echo "bench gate: SKIP (no baseline $baseline)"
fi
