#!/usr/bin/env sh
# Benchmark snapshot: runs the per-policy throughput bench and the kernel
# microbenchmarks in release mode and collects every reported metric into
# BENCH_7.json at the repo root (or the path given as $1). BENCH_5.json
# is the pre-clock-domain allocation-free baseline the PR-7 scheduler
# refactor is gated against (BC events/s within 10%).
#
# The bench harness pins the sweep executor to one job, so the numbers
# measure the kernels rather than the machine's core count; the JSON
# records that alongside the git revision so snapshots from different
# checkouts stay comparable.
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_7.json}"
tsv=$(mktemp)
trap 'rm -f "$tsv"' EXIT

cargo build -q --release --offline -p blitzcoin-bench --benches

BLITZCOIN_BENCH_OUT="$tsv" cargo bench -q --offline -p blitzcoin-bench --bench policies
BLITZCOIN_BENCH_OUT="$tsv" cargo bench -q --offline -p blitzcoin-bench --bench kernels

rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

{
    printf '{\n'
    printf '  "bench": 7,\n'
    printf '  "git_rev": "%s",\n' "$rev"
    printf '  "jobs": 1,\n'
    printf '  "metrics": {\n'
    awk -F'\t' '
        { printf "%s    \"%s\": { \"value\": %s, \"unit\": \"%s\" }", sep, $1, $2, $3; sep = ",\n" }
        END { printf "\n" }
    ' "$tsv"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "bench: wrote $out ($(wc -l < "$tsv") metrics)"
