#!/usr/bin/env sh
# Tier-1 gate: build, tests, formatting, lints. Run from anywhere.
#
# Offline-friendly by design: the workspace has no external dependencies,
# and --offline keeps cargo from ever touching the network, so the gate
# gives the same verdict on an air-gapped machine as in CI.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --all -- --check
cargo clippy --all-targets --offline -- -D warnings

# Architecture gate: the engine stays a scheme-agnostic event loop. The
# hub file must not regrow (the pre-split engine was 2,240 lines), and no
# scheme dispatch may creep back into the engine tree — every
# `match`-on-manager belongs in crates/soc/src/managers/.
engine_lines=$(wc -l < crates/soc/src/engine.rs)
if [ "$engine_lines" -ge 900 ]; then
    echo "ci: crates/soc/src/engine.rs is $engine_lines lines (gate: < 900)" >&2
    exit 1
fi
if grep -rn "match .*manager" crates/soc/src/engine.rs crates/soc/src/engine/; then
    echo "ci: scheme dispatch found in the engine; move it to crates/soc/src/managers/" >&2
    exit 1
fi

# Bench smoke gate: every benchmark body must still run (--test mode
# executes each body once without timing), so a bench target that rots
# fails here instead of on the next scripts/bench.sh snapshot.
cargo bench -q --offline -p blitzcoin-bench --bench policies -- --test
cargo bench -q --offline -p blitzcoin-bench --bench kernels -- --test

# Oracle gate: the whole test suite again with the runtime invariant
# auditing compiled into release code paths (debug/test builds audit by
# default; this leg proves the --features oracle release configuration
# builds and stays silent too).
cargo test -q --release --offline -p blitzcoin-exp --features oracle

# Sweep-engine smoke gate: a quick full run must succeed offline at
# jobs=2, and its CSVs must be byte-identical to a jobs=1 run — the
# executor's determinism contract, end to end. manifest.json is
# excluded: it records wall-clock times, which legitimately differ.
# Both runs audit with --features oracle (the binary exits nonzero if
# any invariant fires, so this is also the zero-violations gate; the
# per-experiment deltas are job-count-independent, keeping the CSV
# comparison honest).
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release --offline -q -p blitzcoin-exp --features oracle -- \
    all --quick --jobs 1 --out "$smoke_dir/jobs1" > /dev/null
cargo run --release --offline -q -p blitzcoin-exp --features oracle -- \
    all --quick --jobs 2 --out "$smoke_dir/jobs2" > /dev/null
for f in "$smoke_dir"/jobs1/*.csv; do
    cmp "$f" "$smoke_dir/jobs2/$(basename "$f")" || {
        echo "ci: $(basename "$f") differs between --jobs 1 and --jobs 2" >&2
        exit 1
    }
done

# Interleave smoke gate: fuzz every cycle-level manager across 4
# shuffled same-timestamp event orderings (healthy + mid-run worker
# kill). A forbidden divergence — an oracle invariant firing under a
# shuffle, or an order-independent fact departing from the FIFO
# baseline — is reported as an OrderIndependence violation, which makes
# the binary exit nonzero. The full 16-ordering sweep runs via
# `blitzcoin-exp interleave` without --quick.
cargo run --release --offline -q -p blitzcoin-exp --features oracle -- \
    interleave --quick --orderings 4 --out "$smoke_dir/interleave" > /dev/null

# Thermal-coupling smoke gate: every cycle-level manager with the RC
# network integrated in-loop and a tight junction limit, audited — the
# throttle path (target cut, coin-spend clamp, reallocation announce)
# must not trip conservation, the budget ceiling, or VF legality.
cargo run --release --offline -q -p blitzcoin-exp --features oracle -- \
    thermal-coupling --quick --out "$smoke_dir/thermal" > /dev/null

# Shoot-out smoke gate: all six schemes through the identical-seed
# fault matrix (healthy, controller death, hierarchy break, sustained
# thermal), oracle-audited and at --jobs 2 so the scenario sweep also
# exercises the parallel executor. The differential claims — who
# survives which fault — are asserted inside the experiment itself.
cargo run --release --offline -q -p blitzcoin-exp --features oracle -- \
    shootout --quick --jobs 2 --out "$smoke_dir/shootout" > /dev/null

# Mega-mesh smoke gate: the 16x16 (256-tile) scaling point, oracle-gated
# and at --jobs 2 so the big-floorplan path also exercises the parallel
# executor. Quick mode skips 32x32; the full validation runs via
# `blitzcoin-exp mega-mesh` without --quick.
cargo run --release --offline -q -p blitzcoin-exp --features oracle -- \
    mega-mesh --quick --jobs 2 --out "$smoke_dir/megamesh" > /dev/null

# Cache gate: the content-addressed sweep cache. One workspace, four
# passes with the plain release binary (rebuilt here because the oracle
# legs above replaced it): cold populates <out>/.cache, two warm passes
# replay from it (min damps 1-CPU scheduler noise), and a --cache off
# pass recomputes everything. Every CSV must be byte-identical across
# all passes — the cache must be invisible to results — and the warm
# pass must regenerate the quick suite at least 3x faster than cold.
cargo build --release --offline -q
cache_ws="$smoke_dir/cache-ws"
t0=$(date +%s%N)
target/release/blitzcoin-exp all --quick --jobs 1 --out "$cache_ws" > /dev/null
t1=$(date +%s%N)
cold_ms=$(( (t1 - t0) / 1000000 ))
mkdir -p "$smoke_dir/cold-csv"
cp "$cache_ws"/*.csv "$smoke_dir/cold-csv/"
warm_ms=
for _pass in 1 2; do
    t0=$(date +%s%N)
    target/release/blitzcoin-exp all --quick --jobs 1 --out "$cache_ws" > /dev/null
    t1=$(date +%s%N)
    ms=$(( (t1 - t0) / 1000000 ))
    if [ -z "$warm_ms" ] || [ "$ms" -lt "$warm_ms" ]; then warm_ms=$ms; fi
done
target/release/blitzcoin-exp all --quick --jobs 1 --cache off \
    --out "$smoke_dir/nocache" > /dev/null
for f in "$smoke_dir"/cold-csv/*.csv; do
    base=$(basename "$f")
    cmp "$f" "$cache_ws/$base" || {
        echo "ci: $base differs between cold and warm cache passes" >&2
        exit 1
    }
    cmp "$f" "$smoke_dir/nocache/$base" || {
        echo "ci: $base differs between cache on and --cache off" >&2
        exit 1
    }
done
if [ "$cold_ms" -lt $(( warm_ms * 3 )) ]; then
    echo "ci: warm cache pass not >=3x faster (cold ${cold_ms} ms, warm ${warm_ms} ms)" >&2
    exit 1
fi
echo "ci: cache gate ok (cold ${cold_ms} ms, warm ${warm_ms} ms)"

# Bench-gate selftest: the host-drift-normalized regression gate's
# arithmetic on synthetic snapshot pairs (pass under pure host drift,
# fail on a true regression, skip on a pre-reference baseline). The
# real gate runs inside scripts/bench.sh, which is too slow for CI.
sh scripts/bench.sh --gate-selftest

echo "ci: all green"
