#!/usr/bin/env sh
# Tier-1 gate: build, tests, formatting, lints. Run from anywhere.
#
# Offline-friendly by design: the workspace has no external dependencies,
# and --offline keeps cargo from ever touching the network, so the gate
# gives the same verdict on an air-gapped machine as in CI.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --all -- --check
cargo clippy --all-targets --offline -- -D warnings

echo "ci: all green"
